"""Semantic analysis: AST -> executable QueryContext (paper Fig. 2).

"A query context is an object abstraction of the input query that contains
all the required information for the query execution."  Compilation

* resolves the context-aware shortcuts (:mod:`repro.lang.inference`),
* validates attribute names per entity type and operation/object-type
  compatibility,
* compiles entity/event constraints into storage-layer predicate trees,
* extracts the spatial (agent) and temporal (window) constraints used for
  partition pruning and parallelization,
* resolves relationships, returns, group-by, having, sort and top clauses
  into index-based references the engine can execute without the AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lang import ast
from repro.lang.errors import AIQLSemanticError
from repro.lang.expr import max_history_depth, referenced_names
from repro.lang.inference import entity_occurrences, infer_multievent
from repro.model.entities import (
    ATTRIBUTES_BY_TYPE,
    Entity,
    EntityType,
    normalize_attribute,
)
from repro.model.events import (
    EVENT_ATTRIBUTES,
    OPERATIONS_BY_OBJECT,
    EventType,
    Operation,
    SystemEvent,
    event_type_of,
)
from repro.model.time import TimeWindow
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateAnd,
    PredicateLeaf,
    PredicateNot,
    PredicateOr,
    conjoin,
    top_level_equalities,
)

# ---------------------------------------------------------------------------
# resolved references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldRef:
    """A value location inside one matched tuple: pattern + role + attr."""

    pattern: int
    role: str  # 'subject' | 'object' | 'event'
    attr: str

    def extract(self, event: SystemEvent, entity_of) -> object:
        """Pull this field's value from a matched event.

        ``entity_of`` maps entity id -> :class:`Entity` (the registry).
        ``attr`` is canonical after semantic analysis, so the entity lookup
        is a plain field access (hot path: executed once per join-row
        comparison).
        """
        if self.role == "event":
            return event.attribute(self.attr)
        entity: Entity = entity_of(
            event.subject_id if self.role == "subject" else event.object_id
        )
        return getattr(entity, self.attr)


@dataclass(frozen=True)
class ResolvedAttrRel:
    left: FieldRef
    op: str
    right: FieldRef

    @property
    def is_equality(self) -> bool:
        return self.op == "="


@dataclass(frozen=True)
class ResolvedTempRel:
    left: int
    kind: str  # 'before' | 'after' | 'within'
    right: int
    low: Optional[float] = None
    high: Optional[float] = None

    def check(self, left_event: SystemEvent, right_event: SystemEvent) -> bool:
        gap = right_event.start_time - left_event.start_time
        if self.kind == "before":
            if gap <= 0:
                return False
        elif self.kind == "after":
            gap = -gap
            if gap <= 0:
                return False
        elif self.kind == "within":
            gap = abs(gap)
        else:  # pragma: no cover - parser restricts kinds
            raise AssertionError(self.kind)
        if self.low is not None and gap < self.low:
            return False
        if self.high is not None and gap > self.high:
            return False
        return True


@dataclass(frozen=True)
class ResolvedReturnItem:
    label: str
    ref: FieldRef
    func: Optional[str] = None  # count/avg/sum/min/max for aggregates
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.func is not None


@dataclass(frozen=True)
class PatternContext:
    """Everything the engine needs about one event pattern."""

    index: int
    event_name: str
    subject_name: str
    object_name: str
    object_type: EntityType
    filter: EventFilter

    @property
    def event_type(self) -> EventType:
        return event_type_of(self.object_type)

    @property
    def score(self) -> int:
        """Pruning score = number of constraints (paper Sec. 5.2)."""
        return self.filter.constraint_count()


@dataclass(frozen=True)
class QueryContext:
    """Executable form of a query (multievent or anomaly)."""

    kind: str  # 'multievent' | 'anomaly'
    patterns: Tuple[PatternContext, ...]
    attr_relationships: Tuple[ResolvedAttrRel, ...]
    temp_relationships: Tuple[ResolvedTempRel, ...]
    return_items: Tuple[ResolvedReturnItem, ...]
    return_count: bool = False
    return_distinct: bool = False
    group_by: Tuple[ResolvedReturnItem, ...] = ()
    having: Optional[ast.ExprNode] = None
    sort: Optional[ast.SortSpec] = None
    top: Optional[int] = None
    window: TimeWindow = field(default_factory=TimeWindow)
    agent_ids: Optional[FrozenSet[int]] = None
    sliding: Optional[ast.SlidingWindowSpec] = None
    source: Optional[ast.MultieventQuery] = None

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(item.label for item in self.return_items)

    def relationships_for(
        self, left: int, right: int
    ) -> List[ResolvedAttrRel]:
        pair = {left, right}
        return [
            rel
            for rel in self.attr_relationships
            if {rel.left.pattern, rel.right.pattern} == pair
        ]


# ---------------------------------------------------------------------------
# constraint compilation
# ---------------------------------------------------------------------------


def _validate_entity_attr(etype: EntityType, attr: str) -> str:
    canonical = normalize_attribute(etype, attr)
    if canonical not in ATTRIBUTES_BY_TYPE[etype]:
        raise AIQLSemanticError(
            f"{etype.value} entities have no attribute {attr!r}",
            hint=f"valid attributes: {', '.join(ATTRIBUTES_BY_TYPE[etype])}",
        )
    return canonical


def _validate_event_attr(attr: str) -> str:
    canonical = attr.strip().lower()
    if canonical not in EVENT_ATTRIBUTES:
        raise AIQLSemanticError(
            f"events have no attribute {attr!r}",
            hint=f"valid attributes: {', '.join(EVENT_ATTRIBUTES)}",
        )
    return canonical


def compile_cstr(node: Optional[ast.CstrNode], etype: Optional[EntityType]):
    """Compile an AST constraint tree to a storage predicate tree.

    ``etype`` selects entity-attribute validation; ``None`` means event
    attributes.
    """
    if node is None:
        return None
    if isinstance(node, ast.CstrLeaf):
        comparison = node.comparison
        if comparison.attr is None:
            raise AIQLSemanticError(
                "constraint with uninferred attribute reached the compiler"
            )
        if etype is not None:
            attr = _validate_entity_attr(etype, comparison.attr)
        else:
            attr = _validate_event_attr(comparison.attr)
        return PredicateLeaf(
            AttrPredicate(attr=attr, op=comparison.op, value=comparison.value)
        )
    if isinstance(node, ast.CstrNot):
        return PredicateNot(compile_cstr(node.child, etype))
    if isinstance(node, ast.CstrAnd):
        return PredicateAnd(
            (compile_cstr(node.left, etype), compile_cstr(node.right, etype))
        )
    if isinstance(node, ast.CstrOr):
        return PredicateOr(
            (compile_cstr(node.left, etype), compile_cstr(node.right, etype))
        )
    raise AssertionError(node)


def compile_operations(
    node: ast.OpNode, object_type: EntityType
) -> Optional[FrozenSet[Operation]]:
    """Evaluate an operation expression into the set of matching operations.

    Returns ``None`` when every operation matches (no constraint).  Raises
    when the expression matches nothing, or nothing legal for the object's
    entity type.
    """

    def matches(op: Operation, n: ast.OpNode) -> bool:
        if isinstance(n, ast.OpLeaf):
            return Operation.parse(n.name) is op
        if isinstance(n, ast.OpNot):
            return not matches(op, n.child)
        if isinstance(n, ast.OpAnd):
            return matches(op, n.left) and matches(op, n.right)
        if isinstance(n, ast.OpOr):
            return matches(op, n.left) or matches(op, n.right)
        raise AssertionError(n)

    matched = frozenset(op for op in Operation if matches(op, node))
    if not matched:
        raise AIQLSemanticError("operation expression matches no operation")
    if object_type is EntityType.NETWORK and Operation.START in matched:
        # The paper writes ``proc p3 start ip ipp`` (Query 1) for a process
        # initiating a connection; normalize to ``connect``.
        matched = (matched - {Operation.START}) | {Operation.CONNECT}
    legal = matched & OPERATIONS_BY_OBJECT[object_type]
    if not legal:
        ops = ", ".join(sorted(op.value for op in matched))
        raise AIQLSemanticError(
            f"operations [{ops}] are invalid for {object_type.value} objects"
        )
    if legal == OPERATIONS_BY_OBJECT[object_type]:
        # Still keep the set: the filter must reject operations of other
        # object types sharing the heap only via object_type, which the
        # filter also carries; no extra constraint needed.
        return legal
    return legal


def _window_from_spec(spec: Optional[ast.TimeWindowSpec]) -> TimeWindow:
    if spec is None:
        return TimeWindow()
    if spec.kind == "at":
        return TimeWindow.at_day(spec.start_text)
    assert spec.end_text is not None
    return TimeWindow.span(spec.start_text, spec.end_text)


def _extract_agent_ids(pred) -> Optional[FrozenSet[int]]:
    """Agent ids implied by top-level agent_id equality predicates."""
    ids: Optional[FrozenSet[int]] = None
    for leaf in top_level_equalities(pred):
        if leaf.attr != "agent_id":
            continue
        if leaf.op == "=" and not leaf.is_like:
            found = frozenset({int(leaf.value)})  # type: ignore[arg-type]
        elif leaf.op == "in":
            found = frozenset(int(v) for v in leaf.value)  # type: ignore[union-attr]
        else:
            continue
        ids = found if ids is None else (ids & found)
    return ids


def _merge_agent_ids(
    *sets: Optional[FrozenSet[int]],
) -> Optional[FrozenSet[int]]:
    merged: Optional[FrozenSet[int]] = None
    for ids in sets:
        if ids is None:
            continue
        merged = ids if merged is None else (merged & ids)
    return merged


# ---------------------------------------------------------------------------
# global constraints
# ---------------------------------------------------------------------------


@dataclass
class _Globals:
    window: TimeWindow
    agent_ids: Optional[FrozenSet[int]]
    event_pred: Optional[object]
    sliding: Optional[ast.SlidingWindowSpec]


def _compile_globals(items: Sequence[ast.GlobalItem]) -> _Globals:
    window = TimeWindow()
    agent_ids: Optional[FrozenSet[int]] = None
    event_preds: List[object] = []
    sliding: Optional[ast.SlidingWindowSpec] = None
    for item in items:
        if isinstance(item, ast.TimeWindowSpec):
            window = window.intersect(_window_from_spec(item))
        elif isinstance(item, ast.SlidingWindowSpec):
            sliding = item
        elif isinstance(item, ast.GlobalConstraint):
            comparison = item.comparison
            attr = normalize_attribute(None, comparison.attr or "")
            if attr == "agent_id" and comparison.op in ("=", "in"):
                if comparison.op == "=":
                    ids = frozenset({int(comparison.value)})  # type: ignore[arg-type]
                else:
                    ids = frozenset(int(v) for v in comparison.value)  # type: ignore[union-attr]
                agent_ids = _merge_agent_ids(agent_ids, ids)
            else:
                canonical = _validate_event_attr(comparison.attr or "")
                event_preds.append(
                    PredicateLeaf(
                        AttrPredicate(
                            attr=canonical, op=comparison.op, value=comparison.value
                        )
                    )
                )
        else:  # pragma: no cover
            raise AssertionError(item)
    return _Globals(
        window=window,
        agent_ids=agent_ids,
        event_pred=conjoin(event_preds),
        sliding=sliding,
    )


# ---------------------------------------------------------------------------
# multievent compilation
# ---------------------------------------------------------------------------


def compile_multievent(query: ast.MultieventQuery) -> QueryContext:
    """Compile a (possibly shortcut-laden) multievent query."""
    inferred = infer_multievent(query)
    globals_ = _compile_globals(inferred.globals)
    occurrences = entity_occurrences(inferred)

    patterns: List[PatternContext] = []
    event_names: Dict[str, int] = {}
    for idx, pattern in enumerate(inferred.patterns):
        subject_type = EntityType.parse(pattern.subject.type_name)
        if subject_type is not EntityType.PROCESS:
            raise AIQLSemanticError(
                f"event subjects must be processes, got "
                f"{subject_type.value!r} in pattern {idx + 1}"
            )
        object_type = EntityType.parse(pattern.object.type_name)
        subject_pred = compile_cstr(pattern.subject.constraints, subject_type)
        object_pred = compile_cstr(pattern.object.constraints, object_type)
        event_pred = conjoin(
            [
                compile_cstr(pattern.event_constraints, None),
                globals_.event_pred,
            ]
        )
        operations = compile_operations(pattern.operation, object_type)
        window = globals_.window.intersect(_window_from_spec(pattern.window))
        agent_ids = _merge_agent_ids(
            globals_.agent_ids,
            _extract_agent_ids(subject_pred),
            _extract_agent_ids(object_pred),
        )
        flt = EventFilter(
            agent_ids=agent_ids,
            window=window,
            operations=operations,
            object_type=object_type,
            subject_pred=subject_pred,
            object_pred=object_pred,
            event_pred=event_pred,
        )
        assert pattern.event_id is not None
        if pattern.event_id in event_names:
            raise AIQLSemanticError(
                f"event id {pattern.event_id!r} used by two patterns"
            )
        event_names[pattern.event_id] = idx
        patterns.append(
            PatternContext(
                index=idx,
                event_name=pattern.event_id,
                subject_name=pattern.subject.entity_id or "",
                object_name=pattern.object.entity_id or "",
                object_type=object_type,
                filter=flt,
            )
        )

    entity_types = {
        name: (
            EntityType.PROCESS
            if occ[0][1] == "subject"
            else EntityType.parse(
                inferred.patterns[occ[0][0]].object.type_name
            )
        )
        for name, occ in occurrences.items()
    }

    attr_rels: List[ResolvedAttrRel] = []
    temp_rels: List[ResolvedTempRel] = []

    # implicit joins from entity ID reuse (Sec. 4.1)
    for name, occ in occurrences.items():
        first = occ[0]
        for other in occ[1:]:
            if other[0] == first[0]:
                continue  # same pattern (e.g. ``proc p start proc p``? skip)
            attr_rels.append(
                ResolvedAttrRel(
                    left=FieldRef(first[0], first[1], "id"),
                    op="=",
                    right=FieldRef(other[0], other[1], "id"),
                )
            )

    def resolve_entity_ref(name: str, attr: str) -> FieldRef:
        occ = occurrences.get(name)
        if occ is None:
            raise AIQLSemanticError(f"unknown entity id {name!r}")
        pattern_idx, role = occ[0]
        etype = entity_types[name]
        return FieldRef(pattern_idx, role, _validate_entity_attr(etype, attr))

    for rel in inferred.relationships:
        if isinstance(rel, ast.AttrRel):
            attr_rels.append(
                ResolvedAttrRel(
                    left=resolve_entity_ref(rel.left_id, rel.left_attr or "id"),
                    op=rel.op,
                    right=resolve_entity_ref(rel.right_id, rel.right_attr or "id"),
                )
            )
        else:
            if rel.left_event not in event_names:
                raise AIQLSemanticError(f"unknown event id {rel.left_event!r}")
            if rel.right_event not in event_names:
                raise AIQLSemanticError(f"unknown event id {rel.right_event!r}")
            temp_rels.append(
                ResolvedTempRel(
                    left=event_names[rel.left_event],
                    kind=rel.kind,
                    right=event_names[rel.right_event],
                    low=rel.low,
                    high=rel.high,
                )
            )

    def resolve_res(res: ast.ResExpr, label: str) -> ResolvedReturnItem:
        if isinstance(res, ast.ResAgg):
            inner = _resolve_res_attr(res.arg)
            return ResolvedReturnItem(
                label=label, ref=inner, func=res.func, distinct=res.distinct
            )
        return ResolvedReturnItem(label=label, ref=_resolve_res_attr(res))

    def _resolve_res_attr(res: ast.ResAttr) -> FieldRef:
        if res.ref in occurrences:
            return resolve_entity_ref(res.ref, res.attr or "id")
        if res.ref in event_names:
            if res.attr is None:
                raise AIQLSemanticError(
                    f"event reference {res.ref!r} needs an explicit attribute"
                )
            return FieldRef(
                event_names[res.ref], "event", _validate_event_attr(res.attr)
            )
        raise AIQLSemanticError(f"unknown id {res.ref!r} in return/group clause")

    return_items = tuple(
        resolve_res(item.expr, item.rename or f"col{i}")
        for i, item in enumerate(inferred.returns.items)
    )
    group_items = tuple(
        resolve_res(res, f"group{i}")
        for i, res in enumerate(inferred.filters.group_by)
    )

    labels = {item.label for item in return_items}
    if inferred.filters.having is not None:
        for name in referenced_names(inferred.filters.having):
            if name not in labels:
                raise AIQLSemanticError(
                    f"having clause references unknown result {name!r}",
                    hint="name results with 'as' in the return clause",
                )
    if inferred.filters.sort is not None:
        for attr in inferred.filters.sort.attrs:
            if attr not in labels:
                raise AIQLSemanticError(
                    f"sort by references unknown result {attr!r}"
                )

    sliding = globals_.sliding
    if sliding is None and inferred.filters.having is not None:
        if max_history_depth(inferred.filters.having) > 0:
            raise AIQLSemanticError(
                "history states (e.g. freq[1]) require a sliding window",
                hint="add 'window = ...' and 'step = ...' global constraints",
            )
    if sliding is not None and not globals_.window.is_bounded():
        raise AIQLSemanticError(
            "anomaly queries require a bounded global time window"
        )

    return QueryContext(
        kind="anomaly" if sliding is not None else "multievent",
        patterns=tuple(patterns),
        attr_relationships=tuple(attr_rels),
        temp_relationships=tuple(temp_rels),
        return_items=return_items,
        return_count=inferred.returns.count,
        return_distinct=inferred.returns.distinct,
        group_by=group_items,
        having=inferred.filters.having,
        sort=inferred.filters.sort,
        top=inferred.filters.top,
        window=globals_.window,
        agent_ids=globals_.agent_ids,
        sliding=sliding,
        source=inferred,
    )
