"""Hand-written lexer for AIQL.

Produces a flat token stream with line/column positions for error
reporting.  ``//`` line comments are skipped (the paper's example queries
are annotated with them).  Strings may use double or single quotes.
"""

from __future__ import annotations

from typing import List

from repro.lang.errors import AIQLSyntaxError
from repro.lang.tokens import Token, TokenType

_SIMPLE_TOKENS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    ":": TokenType.COLON,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
}


def tokenize(source: str) -> List[Token]:
    """Tokenize AIQL source text; raises :class:`AIQLSyntaxError`."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(message: str) -> AIQLSyntaxError:
        return AIQLSyntaxError(message, line=line, column=col, source=source)

    while i < n:
        ch = source[i]

        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue

        # line comments
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue

        start_line, start_col = line, col

        # two-character operators (check before single-character ones)
        two = source[i : i + 2]
        if two == "->":
            tokens.append(Token(TokenType.ARROW, two, two, start_line, start_col))
            i += 2
            col += 2
            continue
        if two == "<-":
            # Disambiguate from a comparison like ``a <- 1`` is not legal
            # AIQL; ``<-`` always means a dependency edge.
            tokens.append(Token(TokenType.BACKARROW, two, two, start_line, start_col))
            i += 2
            col += 2
            continue
        if two == "&&":
            tokens.append(Token(TokenType.AND, two, two, start_line, start_col))
            i += 2
            col += 2
            continue
        if two == "||":
            tokens.append(Token(TokenType.OR, two, two, start_line, start_col))
            i += 2
            col += 2
            continue
        if two == "!=":
            tokens.append(Token(TokenType.NEQ, two, two, start_line, start_col))
            i += 2
            col += 2
            continue
        if two == "<=":
            tokens.append(Token(TokenType.LTE, two, two, start_line, start_col))
            i += 2
            col += 2
            continue
        if two == ">=":
            tokens.append(Token(TokenType.GTE, two, two, start_line, start_col))
            i += 2
            col += 2
            continue

        if ch == "=":
            tokens.append(Token(TokenType.EQ, ch, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        if ch == "<":
            tokens.append(Token(TokenType.LT, ch, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        if ch == ">":
            tokens.append(Token(TokenType.GT, ch, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        if ch == "!":
            tokens.append(Token(TokenType.BANG, ch, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        if ch == "-":
            tokens.append(Token(TokenType.MINUS, ch, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        if ch in _SIMPLE_TOKENS:
            tokens.append(Token(_SIMPLE_TOKENS[ch], ch, ch, start_line, start_col))
            i += 1
            col += 1
            continue

        # string literals
        if ch in ('"', "'"):
            quote = ch
            j = i + 1
            chunks: List[str] = []
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise error("unterminated string literal")
                if source[j] == "\\" and j + 1 < n:
                    chunks.append(source[j + 1])
                    j += 2
                    continue
                chunks.append(source[j])
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            text = source[i : j + 1]
            value = "".join(chunks)
            tokens.append(Token(TokenType.STRING, text, value, start_line, start_col))
            col += j + 1 - i
            i = j + 1
            continue

        # numbers (int or float)
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # Do not absorb a trailing dot that belongs to attribute
                    # access after a number-like identifier (rare; be safe).
                    if j + 1 >= n or not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            text = source[i:j]
            value: object = float(text) if "." in text else int(text)
            tokens.append(Token(TokenType.NUMBER, text, value, start_line, start_col))
            col += j - i
            i = j
            continue

        # identifiers (allow embedded digits and underscores)
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            tokens.append(Token(TokenType.IDENT, text, text, start_line, start_col))
            col += j - i
            i = j
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenType.EOF, "", None, line, col))
    return tokens
