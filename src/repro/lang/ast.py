"""AST for AIQL (paper Grammar 1).

Nodes mirror the BNF rules: global constraints, event patterns built from
entities and operation expressions, event relationships (attribute and
temporal), return/filter clauses, and dependency paths.  The AST is purely
syntactic; context-aware shortcut resolution happens in
:mod:`repro.lang.inference` and semantic compilation in
:mod:`repro.lang.context`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

# ---------------------------------------------------------------------------
# constraints (<cstr>, <attr_cstr>)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``attr <bop> value`` | bare ``value`` | ``attr [not] in (...)``.

    ``attr is None`` means the default attribute must be inferred from the
    entity type (Sec. 4.1 attribute inference).
    """

    attr: Optional[str]
    op: str  # '=', '!=', '<', '<=', '>', '>=', 'in', 'not in'
    value: object  # str | int | float | tuple for in-lists


@dataclass(frozen=True)
class CstrLeaf:
    comparison: Comparison


@dataclass(frozen=True)
class CstrNot:
    child: "CstrNode"


@dataclass(frozen=True)
class CstrAnd:
    left: "CstrNode"
    right: "CstrNode"


@dataclass(frozen=True)
class CstrOr:
    left: "CstrNode"
    right: "CstrNode"


CstrNode = Union[CstrLeaf, CstrNot, CstrAnd, CstrOr]

# ---------------------------------------------------------------------------
# operation expressions (<op_exp>)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpLeaf:
    name: str


@dataclass(frozen=True)
class OpNot:
    child: "OpNode"


@dataclass(frozen=True)
class OpAnd:
    left: "OpNode"
    right: "OpNode"


@dataclass(frozen=True)
class OpOr:
    left: "OpNode"
    right: "OpNode"


OpNode = Union[OpLeaf, OpNot, OpAnd, OpOr]

# ---------------------------------------------------------------------------
# time windows and global constraints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimeWindowSpec:
    """``(at "01/01/2017")`` or ``from <dt> to <dt>``."""

    kind: str  # 'at' | 'range'
    start_text: str
    end_text: Optional[str] = None


@dataclass(frozen=True)
class SlidingWindowSpec:
    """``window = 1 min`` / ``step = 10 sec`` pair (anomaly queries)."""

    window_seconds: float
    step_seconds: float


@dataclass(frozen=True)
class GlobalConstraint:
    """A bare global comparison such as ``agentid = 1``."""

    comparison: Comparison


GlobalItem = Union[GlobalConstraint, TimeWindowSpec, SlidingWindowSpec]

# ---------------------------------------------------------------------------
# entities and event patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EntityPattern:
    """``proc p1["%apache%"]`` — type, optional id, optional constraints."""

    type_name: str  # 'proc' | 'file' | 'ip'
    entity_id: Optional[str] = None
    constraints: Optional[CstrNode] = None


@dataclass(frozen=True)
class EventPattern:
    """``<entity> <op_exp> <entity> (as evt[cstr])? ((twind))?``."""

    subject: EntityPattern
    operation: OpNode
    object: EntityPattern
    event_id: Optional[str] = None
    event_constraints: Optional[CstrNode] = None
    window: Optional[TimeWindowSpec] = None


# ---------------------------------------------------------------------------
# event relationships (<evt_rel>)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttrRel:
    """``p1.attr <bop> p3.attr`` (attrs optional -> inferred as ``id``)."""

    left_id: str
    left_attr: Optional[str]
    op: str
    right_id: str
    right_attr: Optional[str]


@dataclass(frozen=True)
class TempRel:
    """``evt1 before[1-2 minutes] evt2`` and friends."""

    left_event: str
    kind: str  # 'before' | 'after' | 'within'
    right_event: str
    low: Optional[float] = None  # seconds
    high: Optional[float] = None  # seconds


Relationship = Union[AttrRel, TempRel]

# ---------------------------------------------------------------------------
# having-clause expressions (anomaly queries)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    value: float


@dataclass(frozen=True)
class Name:
    """A reference to a return-clause result, with optional history index.

    ``freq`` -> Name('freq', 0); ``freq[2]`` -> Name('freq', 2): the value of
    ``freq`` two sliding-window steps earlier (paper Sec. 4.3 history states).
    """

    name: str
    history: int = 0


@dataclass(frozen=True)
class BinOp:
    op: str  # '+', '-', '*', '/', '=', '!=', '<', '<=', '>', '>=', '&&', '||'
    left: "ExprNode"
    right: "ExprNode"


@dataclass(frozen=True)
class FuncCall:
    """Built-in function: moving averages (SMA/CMA/WMA/EWMA), abs..."""

    name: str
    args: Tuple["ExprNode", ...]


ExprNode = Union[Num, Name, BinOp, FuncCall]

# ---------------------------------------------------------------------------
# return clause and filters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResAttr:
    """``p1`` or ``p1.exe_name`` or ``evt1.optype``."""

    ref: str
    attr: Optional[str] = None


@dataclass(frozen=True)
class ResAgg:
    """``count(distinct ipp)`` / ``avg(evt.amount)``..."""

    func: str
    arg: ResAttr
    distinct: bool = False


ResExpr = Union[ResAttr, ResAgg]


@dataclass(frozen=True)
class ReturnItem:
    expr: ResExpr
    rename: Optional[str] = None


@dataclass(frozen=True)
class ReturnClause:
    items: Tuple[ReturnItem, ...]
    count: bool = False
    distinct: bool = False


@dataclass(frozen=True)
class SortSpec:
    attrs: Tuple[str, ...]
    descending: bool = False


@dataclass(frozen=True)
class Filters:
    """The optional trailing clauses: group by / having / sort by / top."""

    group_by: Tuple[ResExpr, ...] = ()
    having: Optional[ExprNode] = None
    sort: Optional[SortSpec] = None
    top: Optional[int] = None


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MultieventQuery:
    globals: Tuple[GlobalItem, ...]
    patterns: Tuple[EventPattern, ...]
    relationships: Tuple[Relationship, ...]
    returns: ReturnClause
    filters: Filters = field(default_factory=Filters)

    @property
    def sliding_window(self) -> Optional[SlidingWindowSpec]:
        for item in self.globals:
            if isinstance(item, SlidingWindowSpec):
                return item
        return None

    @property
    def is_anomaly(self) -> bool:
        """Anomaly queries are multievent queries with a sliding window."""
        return self.sliding_window is not None


@dataclass(frozen=True)
class DependencyEdge:
    """``->[op_exp]`` or ``<-[op_exp]`` between two path nodes."""

    direction: str  # '->' | '<-'
    operation: OpNode


@dataclass(frozen=True)
class DependencyQuery:
    globals: Tuple[GlobalItem, ...]
    direction: Optional[str]  # 'forward' | 'backward' | None
    nodes: Tuple[EntityPattern, ...]
    edges: Tuple[DependencyEdge, ...]
    returns: ReturnClause
    filters: Filters = field(default_factory=Filters)

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.edges) + 1:
            raise ValueError(
                "dependency path must have exactly one more node than edges"
            )


Query = Union[MultieventQuery, DependencyQuery]
