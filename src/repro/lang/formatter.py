"""AST -> canonical AIQL text.

Used by round-trip property tests (``parse(format(parse(q)))`` must equal
``parse(q)``) and by tooling that wants to display normalized queries.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast
from repro.model.time import MINUTE, HOUR, DAY


def _format_value(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, (tuple, list, frozenset, set)):
        inner = ", ".join(_format_value(v) for v in value)
        return f"({inner})"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _format_comparison(comparison: ast.Comparison) -> str:
    if comparison.attr is None:
        return _format_value(comparison.value)
    if comparison.op in ("in", "not in"):
        return f"{comparison.attr} {comparison.op} {_format_value(comparison.value)}"
    return f"{comparison.attr} {comparison.op} {_format_value(comparison.value)}"


def format_cstr(node: ast.CstrNode) -> str:
    if isinstance(node, ast.CstrLeaf):
        return _format_comparison(node.comparison)
    if isinstance(node, ast.CstrNot):
        return f"!({format_cstr(node.child)})"
    if isinstance(node, ast.CstrAnd):
        return f"({format_cstr(node.left)} && {format_cstr(node.right)})"
    if isinstance(node, ast.CstrOr):
        return f"({format_cstr(node.left)} || {format_cstr(node.right)})"
    raise AssertionError(node)


def format_op(node: ast.OpNode) -> str:
    if isinstance(node, ast.OpLeaf):
        return node.name
    if isinstance(node, ast.OpNot):
        return f"!({format_op(node.child)})"
    if isinstance(node, ast.OpAnd):
        return f"({format_op(node.left)} && {format_op(node.right)})"
    if isinstance(node, ast.OpOr):
        return f"({format_op(node.left)} || {format_op(node.right)})"
    raise AssertionError(node)


def _format_entity(entity: ast.EntityPattern) -> str:
    text = entity.type_name
    if entity.entity_id:
        text += f" {entity.entity_id}"
    if entity.constraints is not None:
        text += f"[{format_cstr(entity.constraints)}]"
    return text


def _format_window(spec: ast.TimeWindowSpec) -> str:
    if spec.kind == "at":
        return f'(at "{spec.start_text}")'
    return f'(from "{spec.start_text}" to "{spec.end_text}")'


def _format_duration(seconds: float) -> str:
    for size, unit in ((DAY, "day"), (HOUR, "hour"), (MINUTE, "min")):
        if seconds % size == 0 and seconds >= size:
            return f"{int(seconds // size)} {unit}"
    if float(seconds).is_integer():
        return f"{int(seconds)} sec"
    return f"{seconds} sec"


def _format_globals(items) -> List[str]:
    lines: List[str] = []
    for item in items:
        if isinstance(item, ast.TimeWindowSpec):
            lines.append(_format_window(item))
        elif isinstance(item, ast.SlidingWindowSpec):
            lines.append(
                f"window = {_format_duration(item.window_seconds)}, "
                f"step = {_format_duration(item.step_seconds)}"
            )
        elif isinstance(item, ast.GlobalConstraint):
            lines.append(_format_comparison(item.comparison))
    return lines


def format_expr(node: ast.ExprNode) -> str:
    if isinstance(node, ast.Num):
        value = node.value
        return str(int(value)) if float(value).is_integer() else str(value)
    if isinstance(node, ast.Name):
        return node.name if not node.history else f"{node.name}[{node.history}]"
    if isinstance(node, ast.FuncCall):
        args = ", ".join(format_expr(a) for a in node.args)
        return f"{node.name.upper()}({args})"
    if isinstance(node, ast.BinOp):
        return f"({format_expr(node.left)} {node.op} {format_expr(node.right)})"
    raise AssertionError(node)


def _format_res(res: ast.ResExpr) -> str:
    if isinstance(res, ast.ResAgg):
        inner = _format_res(res.arg)
        distinct = "distinct " if res.distinct else ""
        return f"{res.func}({distinct}{inner})"
    return res.ref if res.attr is None else f"{res.ref}.{res.attr}"


def _format_return(returns: ast.ReturnClause) -> str:
    prefix = "return "
    if returns.count:
        prefix += "count "
    if returns.distinct:
        prefix += "distinct "
    items = []
    for item in returns.items:
        text = _format_res(item.expr)
        if item.rename and item.rename != text:
            text += f" as {item.rename}"
        items.append(text)
    return prefix + ", ".join(items)


def _format_filters(filters: ast.Filters) -> List[str]:
    lines: List[str] = []
    if filters.group_by:
        lines.append("group by " + ", ".join(_format_res(r) for r in filters.group_by))
    if filters.having is not None:
        lines.append("having " + format_expr(filters.having))
    if filters.sort is not None:
        direction = " desc" if filters.sort.descending else ""
        lines.append("sort by " + ", ".join(filters.sort.attrs) + direction)
    if filters.top is not None:
        lines.append(f"top {filters.top}")
    return lines


def format_query(query: ast.Query) -> str:
    """Render a query AST back to AIQL source text."""
    if isinstance(query, ast.MultieventQuery):
        return _format_multievent(query)
    return _format_dependency(query)


def _format_multievent(query: ast.MultieventQuery) -> str:
    lines = _format_globals(query.globals)
    for pattern in query.patterns:
        text = (
            f"{_format_entity(pattern.subject)} {format_op(pattern.operation)} "
            f"{_format_entity(pattern.object)}"
        )
        if pattern.event_id:
            text += f" as {pattern.event_id}"
            if pattern.event_constraints is not None:
                text += f"[{format_cstr(pattern.event_constraints)}]"
        if pattern.window is not None:
            text += f" {_format_window(pattern.window)}"
        lines.append(text)
    if query.relationships:
        rel_texts = []
        for rel in query.relationships:
            if isinstance(rel, ast.AttrRel):
                left = rel.left_id if rel.left_attr is None else f"{rel.left_id}.{rel.left_attr}"
                right = (
                    rel.right_id
                    if rel.right_attr is None
                    else f"{rel.right_id}.{rel.right_attr}"
                )
                rel_texts.append(f"{left} {rel.op} {right}")
            else:
                bounds = ""
                if rel.low is not None and rel.high is not None:
                    bounds = (
                        f"[{_format_duration(rel.low).replace(' ', '-', 0)}"
                        if False
                        else f"[{int(rel.low)}-{int(rel.high)} sec]"
                    )
                rel_texts.append(
                    f"{rel.left_event} {rel.kind}{bounds} {rel.right_event}"
                )
        lines.append("with " + ", ".join(rel_texts))
    lines.append(_format_return(query.returns))
    lines.extend(_format_filters(query.filters))
    return "\n".join(lines)


def _format_dependency(query: ast.DependencyQuery) -> str:
    lines = _format_globals(query.globals)
    path = ""
    if query.direction:
        path += f"{query.direction}: "
    path += _format_entity(query.nodes[0])
    for edge, node in zip(query.edges, query.nodes[1:]):
        path += f" {edge.direction}[{format_op(edge.operation)}] {_format_entity(node)}"
    lines.append(path)
    lines.append(_format_return(query.returns))
    lines.extend(_format_filters(query.filters))
    return "\n".join(lines)
