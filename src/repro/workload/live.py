"""Live replay: stream the simulated enterprise at a target event rate.

Production monitoring never stops — agents trickle events into the central
store while analysts run investigation queries.  :class:`LiveReplay` drives
the :class:`~repro.workload.generator.BackgroundGenerator` through a
:class:`~repro.service.stream.StreamSession`, pacing emissions to a target
events/second rate, so benchmarks and ``corpus --live`` can measure query
throughput *under* concurrent ingest instead of against a frozen store.

The replay generates days beyond the pre-loaded simulation window by
default, mimicking "today's" traffic arriving on top of the historical
data the corpus queries investigate.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.time import DAY
from repro.workload.generator import BackgroundGenerator, GeneratorConfig
from repro.workload.topology import BASE_DAY, HOSTS, Host, SIMULATION_DAYS


class _StopReplay(Exception):
    """Internal: unwinds the generator when the replay is told to stop."""


class _PacedFeed:
    """StreamSession proxy that paces ``emit`` to a target rate.

    Entity observations pass through unthrottled (they are metadata, not
    stream volume); each event emission sleeps as needed to hold the rate
    and checks the stop signal / event budget.
    """

    def __init__(
        self,
        session,
        rate: float,
        stop: Optional[threading.Event],
        max_events: Optional[int],
    ) -> None:
        self._session = session
        self._rate = rate
        self._stop = stop
        self._max = max_events
        self._started = time.monotonic()
        self.count = 0

    def __getattr__(self, name):
        return getattr(self._session, name)

    def emit(self, *args, **kwargs):
        if self._stop is not None and self._stop.is_set():
            raise _StopReplay
        if self._max is not None and self.count >= self._max:
            raise _StopReplay
        if self._rate > 0:
            due = self._started + self.count / self._rate
            delay = due - time.monotonic()
            if delay > 0:
                if self._stop is not None:
                    # Interruptible: a stop() request must not wait out the
                    # full inter-event delay (100 s at rate 0.01).
                    if self._stop.wait(delay):
                        raise _StopReplay
                else:
                    time.sleep(delay)
        event = self._session.emit(*args, **kwargs)
        self.count += 1
        return event


@dataclass
class ReplayStats:
    """Outcome of one replay run."""

    events: int
    batches: int
    wall_s: float
    target_rate: float
    watermark: int

    @property
    def achieved_rate(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


class ReplayHandle:
    """A replay running on a background thread."""

    def __init__(self, thread: threading.Thread, stop: threading.Event, box: dict):
        self._thread = thread
        self._stop = stop
        self._box = box

    def stop(self, timeout: float = 30.0) -> ReplayStats:
        """Signal the replay to finish, wait for it, return its stats."""
        self._stop.set()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("live replay did not stop in time")
        error = self._box.get("error")
        if error is not None:
            raise error
        return self._box["stats"]


class LiveReplay:
    """Streams generated enterprise activity through a StreamSession."""

    def __init__(
        self,
        session,
        rate: float = 1000.0,
        hosts: Sequence[Host] = HOSTS,
        start_day: Optional[float] = None,
        seed: int = 20170117,
        events_per_host_day: int = 400,
    ) -> None:
        """``rate`` is the target events/second; 0 means unthrottled.

        ``start_day`` defaults to the first day after the pre-loaded
        simulation window, so live traffic lands in fresh partitions the
        way "today's" events would.
        """
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.session = session
        self.rate = rate
        self.hosts = hosts
        self.start_day = (
            start_day
            if start_day is not None
            else BASE_DAY + SIMULATION_DAYS * DAY
        )
        self.seed = seed
        self.events_per_host_day = events_per_host_day

    def stream(
        self,
        max_events: Optional[int] = None,
        stop: Optional[threading.Event] = None,
    ) -> ReplayStats:
        """Run the replay on the calling thread until stopped or exhausted.

        Generates day after day of background activity (the day index only
        shifts timestamps; the stream is unbounded) and commits the tail
        batch before returning, so everything emitted is visible.
        """
        feed = _PacedFeed(self.session, self.rate, stop, max_events)
        generator = BackgroundGenerator(
            feed,
            GeneratorConfig(
                seed=self.seed,
                hosts=self.hosts,
                events_per_host_day=self.events_per_host_day,
            ),
        )
        batches_before = self.session.batches_committed
        started = time.monotonic()
        day = 0
        try:
            while max_events is None or feed.count < max_events:
                if stop is not None and stop.is_set():
                    break
                generator.run_day(self.start_day + day * DAY)
                day += 1
        except _StopReplay:
            pass
        watermark = self.session.commit()
        wall = time.monotonic() - started
        return ReplayStats(
            events=feed.count,
            batches=self.session.batches_committed - batches_before,
            wall_s=wall,
            target_rate=self.rate,
            watermark=watermark,
        )

    def start(self, max_events: Optional[int] = None) -> ReplayHandle:
        """Run :meth:`stream` on a daemon thread; stop via the handle."""
        stop = threading.Event()
        box: dict = {}

        def run() -> None:
            try:
                box["stats"] = self.stream(max_events=max_events, stop=stop)
            except BaseException as exc:  # surfaced by ReplayHandle.stop
                box["error"] = exc

        thread = threading.Thread(target=run, name="aiql-live-replay", daemon=True)
        thread.start()
        return ReplayHandle(thread, stop, box)
