"""The AIQL query corpus (paper Secs. 6.2-6.4).

Two query sets, written against the simulated enterprise of
:mod:`repro.workload.topology`:

* **Case study** (Table 3 / Fig. 5) — the 26 multievent queries + 1 anomaly
  query of the iterative APT investigation.  Query and event-pattern counts
  per step match Table 3 exactly: c1 1/3, c2 8/27, c3 2/4, c4 8/35
  (c4-8 is the paper's largest query with 7 patterns), c5 7/18, plus the
  c5 anomaly starter (the paper's Query 5).
* **Performance/conciseness** (Figs. 6-8) — the 19 queries over the four
  behavior categories: multi-step attacks a1-a5, dependency tracking d1-d3,
  malware v1-v5, abnormal behaviors s1-s6 (s5/s6 are anomaly queries with
  no SQL/Cypher/SPL equivalent, as in the paper).

Every query returns at least ``min_rows`` rows on the default workload —
the integration tests assert this ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class CorpusQuery:
    qid: str
    group: str  # 'c1'..'c5' | 'a' | 'd' | 'v' | 's'
    kind: str  # 'multievent' | 'dependency' | 'anomaly'
    text: str
    min_rows: int = 1


_APT = '(at "01/05/2017")'
_ABN = '(at "01/06/2017")'
_DEP = '(at "01/07/2017")'
_A2 = '(at "01/08/2017")'
_MAL = '(at "01/09/2017")'

# ---------------------------------------------------------------------------
# case study: c1 (1 query / 3 patterns)
# ---------------------------------------------------------------------------

C1_QUERIES = (
    CorpusQuery(
        "c1-1",
        "c1",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p1["%outlook.exe"] connect ip i1[dstport = 143] as evt1
        proc p1 read ip i1 as evt2
        proc p1 write file f1["%.xlsm"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p1, i1, f1
        """,
    ),
)

# ---------------------------------------------------------------------------
# case study: c2 (8 queries / 27 patterns: 1+2+3+3+4+4+5+5)
# ---------------------------------------------------------------------------

C2_QUERIES = (
    CorpusQuery(
        "c2-1",
        "c2",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p1 start proc p2["%payload.exe"] as evt1
        return distinct p1, p2
        """,
    ),
    CorpusQuery(
        "c2-2",
        "c2",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p1 write file f1["%payload.exe"] as evt1
        proc p1 start proc p2["%payload.exe"] as evt2
        with evt1 before evt2
        return distinct p1, f1, p2
        """,
    ),
    CorpusQuery(
        "c2-3",
        "c2",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p1 connect ip i1[dstip = "203.0.113.129"] as evt1
        proc p1 write file f1["%payload.exe"] as evt2
        proc p1 start proc p2["%payload.exe"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p1, i1, f1, p2
        """,
    ),
    CorpusQuery(
        "c2-4",
        "c2",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p0["%outlook.exe"] start proc p1["%excel.exe"] as evt1
        proc p1 read file f1["%quarterly_report%"] as evt2
        proc p1 start proc p2["%payload.exe"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p0, p1, f1, p2
        """,
    ),
    CorpusQuery(
        "c2-5",
        "c2",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p1["%excel.exe"] connect ip i1[dstip = "203.0.113.129"] as evt1
        proc p1 write file f1["%payload.exe"] as evt2
        proc p1 start proc p2["%payload.exe"] as evt3
        proc p2 connect ip i2[dstport = 4444] as evt4
        with evt1 before evt2, evt2 before evt3, evt3 before evt4
        return distinct p1, f1, p2, i2
        """,
    ),
    CorpusQuery(
        "c2-6",
        "c2",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p0["%outlook.exe"] write file f0["%.xlsm"] as evt1
        proc p1["%excel.exe"] read file f0 as evt2
        proc p1 write file f1["%payload.exe"] as evt3
        proc p1 start proc p2["%payload.exe"] as evt4
        with evt1 before evt2, evt2 before evt3, evt3 before evt4
        return distinct p0, f0, p1, f1, p2
        """,
    ),
    CorpusQuery(
        "c2-7",
        "c2",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p0["%outlook.exe"] start proc p1["%excel.exe"] as evt1
        proc p1 read file f0["%.xlsm"] as evt2
        proc p1 write file f1["%payload.exe"] as evt3
        proc p1 start proc p2["%payload.exe"] as evt4
        proc p2 connect ip i1[dstip = "203.0.113.129"] as evt5
        with evt1 before evt2, evt2 before evt3, evt3 before evt4,
             evt4 before evt5
        return distinct p0, p1, f0, f1, p2, i1
        """,
    ),
    CorpusQuery(
        "c2-8",
        "c2",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p1["%excel.exe"] read file f0["%.xlsm"] as evt1
        proc p1 connect ip i0[dstip = "203.0.113.129"] as evt2
        proc p1 write file f1["%payload.exe"] as evt3
        proc p1 start proc p2["%payload.exe"] as evt4
        proc p2 connect ip i1[dstport = 4444] as evt5
        with evt1 before evt2, evt2 before evt3, evt3 before evt4,
             evt4 before evt5
        return distinct p1, f0, i0, f1, p2, i1
        """,
    ),
)

# ---------------------------------------------------------------------------
# case study: c3 (2 queries / 4 patterns)
# ---------------------------------------------------------------------------

C3_QUERIES = (
    CorpusQuery(
        "c3-1",
        "c3",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p1 start proc p2["%gsecdump.exe"] as evt1
        proc p2 read file f1["%config/SAM"] as evt2
        with evt1 before evt2
        return distinct p1, p2, f1
        """,
    ),
    CorpusQuery(
        "c3-2",
        "c3",
        "multievent",
        f"""
        agentid = 1 {_APT}
        proc p2["%gsecdump.exe"] read file f1["%SAM"] as evt1
        proc p2 write ip i1[dstip = "203.0.113.129"] as evt2
        with evt1 before evt2
        return distinct p2, f1, i1
        """,
    ),
)

# ---------------------------------------------------------------------------
# case study: c4 (8 queries / 35 patterns: 1+3+4+4+5+5+6+7)
# ---------------------------------------------------------------------------

C4_QUERIES = (
    CorpusQuery(
        "c4-1",
        "c4",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p1 write file f1["%sbblv.exe"] as evt1
        return distinct p1, f1
        """,
    ),
    CorpusQuery(
        "c4-2",
        "c4",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p0["%cmd.exe"] start proc p1["%wscript.exe"] as evt1
        proc p1 write file f1["%sbblv.exe"] as evt2
        proc p1 start proc p2["%sbblv.exe"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p0, p1, f1, p2
        """,
    ),
    CorpusQuery(
        "c4-3",
        "c4",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p0["%cmd.exe"] start proc p1["%wscript.exe"] as evt1
        proc p1 read file f0["%dropper.vbs"] as evt2
        proc p1 write file f1["%sbblv.exe"] as evt3
        proc p1 start proc p2["%sbblv.exe"] as evt4
        with evt1 before evt2, evt2 before evt3, evt3 before evt4
        return distinct p0, p1, f0, f1, p2
        """,
    ),
    CorpusQuery(
        "c4-4",
        "c4",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p0["%cmd.exe"] write file f0["%dropper.vbs"] as evt1
        proc p0 start proc p1["%wscript.exe"] as evt2
        proc p1 read file f0 as evt3
        proc p1 write file f1["%sbblv.exe"] as evt4
        with evt1 before evt2, evt2 before evt3, evt3 before evt4
        return distinct p0, f0, p1, f1
        """,
    ),
    CorpusQuery(
        "c4-5",
        "c4",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p0["%cmd.exe"] write file f0["%dropper.vbs"] as evt1
        proc p0 start proc p1["%wscript.exe"] as evt2
        proc p1 read file f0 as evt3
        proc p1 write file f1["%sbblv.exe"] as evt4
        proc p1 start proc p2["%sbblv.exe"] as evt5
        with evt1 before evt2, evt2 before evt3, evt3 before evt4,
             evt4 before evt5
        return distinct p0, f0, p1, f1, p2
        """,
    ),
    CorpusQuery(
        "c4-6",
        "c4",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc ps["%sqlservr.exe"] start proc p0["%cmd.exe"] as evt1
        proc p0 write file f0["%dropper.vbs"] as evt2
        proc p0 start proc p1["%wscript.exe"] as evt3
        proc p1 write file f1["%sbblv.exe"] as evt4
        proc p1 start proc p2["%sbblv.exe"] as evt5
        with evt1 before evt2, evt2 before evt3, evt3 before evt4,
             evt4 before evt5
        return distinct ps, p0, f0, p1, f1, p2
        """,
    ),
    CorpusQuery(
        "c4-7",
        "c4",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc ps["%sqlservr.exe"] start proc p0["%cmd.exe"] as evt1
        proc p0 write file f0["%dropper.vbs"] as evt2
        proc p0 start proc p1["%wscript.exe"] as evt3
        proc p1 write file f1["%sbblv.exe"] as evt4
        proc p1 start proc p2["%sbblv.exe"] as evt5
        proc p2 connect ip i1[dstip = "203.0.113.129"] as evt6
        with evt1 before evt2, evt2 before evt3, evt3 before evt4,
             evt4 before evt5, evt5 before evt6
        return distinct ps, p0, f0, p1, f1, p2, i1
        """,
    ),
    CorpusQuery(
        "c4-8",
        "c4",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc ps["%sqlservr.exe"] start proc p0["%cmd.exe"] as evt1
        proc p0 write file f0["%dropper.vbs"] as evt2
        proc p0 start proc p1["%wscript.exe"] as evt3
        proc p1 read file f0 as evt4
        proc p1 write file f1["%sbblv.exe"] as evt5
        proc p1 start proc p2["%sbblv.exe"] as evt6
        proc p2 connect ip i1[dstip = "203.0.113.129"] as evt7
        with evt1 before evt2, evt2 before evt3, evt3 before evt4,
             evt4 before evt5, evt5 before evt6, evt6 before evt7
        return distinct ps, p0, f0, p1, f1, p2, i1
        """,
    ),
)

# ---------------------------------------------------------------------------
# case study: c5 (7 queries / 18 patterns: 1+2+2+3+3+3+4, plus the anomaly
# starter — the paper's Query 5)
# ---------------------------------------------------------------------------

C5_ANOMALY = CorpusQuery(
    "c5-anomaly",
    "c5",
    "anomaly",
    f"""
    {_APT}
    agentid = 3
    window = 1 min, step = 10 sec
    proc p write ip i[dstip = "203.0.113.129"] as evt
    return p, avg(evt.amount) as amt
    group by p
    having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
    """,
)

C5_QUERIES = (
    CorpusQuery(
        "c5-1",
        "c5",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p1 write ip i1[dstip = "203.0.113.129"] as evt1
        return distinct p1, i1
        """,
    ),
    CorpusQuery(
        "c5-2",
        "c5",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p1["%sbblv.exe"] read || write file f1 as evt1
        proc p1 read || write ip i1[dstip = "203.0.113.129"] as evt2
        with evt1 before evt2
        return distinct p1, f1, i1, evt1.optype
        """,
    ),
    CorpusQuery(
        "c5-3",
        "c5",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p3 write file f1["%backup1.dmp"] as evt1
        proc p4["%sbblv.exe"] read file f1 as evt2
        with evt1 before evt2
        return distinct p3, f1, p4
        """,
    ),
    CorpusQuery(
        "c5-4",
        "c5",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
        proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
        proc p4 read file f1 as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p1, p2, p3, f1, p4
        """,
    ),
    CorpusQuery(
        "c5-5",
        "c5",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt1
        proc p4["%sbblv.exe"] read file f1 as evt2
        proc p4 write ip i1[dstip = "203.0.113.129"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p3, f1, p4, i1
        """,
    ),
    CorpusQuery(
        "c5-6",
        "c5",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
        proc p4["%sbblv.exe"] read file f1["%backup1.dmp"] as evt2
        proc p4 write ip i1[dstip = "203.0.113.129"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p1, p2, f1, p4, i1
        """,
    ),
    CorpusQuery(
        "c5-7",
        "c5",
        "multievent",
        f"""
        agentid = 3 {_APT}
        proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
        proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
        proc p4["%sbblv.exe"] read file f1 as evt3
        proc p4 read || write ip i1[dstip = "203.0.113.129"] as evt4
        with evt1 before evt2, evt2 before evt3, evt3 before evt4
        return distinct p1, p2, p3, f1, p4, i1
        """,
    ),
)

CASE_STUDY_QUERIES: Tuple[CorpusQuery, ...] = (
    *C1_QUERIES,
    *C2_QUERIES,
    *C3_QUERIES,
    *C4_QUERIES,
    *C5_QUERIES,
)

CASE_STUDY_WITH_ANOMALY: Tuple[CorpusQuery, ...] = (
    *CASE_STUDY_QUERIES,
    C5_ANOMALY,
)

# ---------------------------------------------------------------------------
# performance/conciseness corpus: a1-a5
# ---------------------------------------------------------------------------

A_QUERIES = (
    CorpusQuery(
        "a1",
        "a",
        "multievent",
        f"""
        agentid = 5 {_A2}
        proc p1["%firefox%"] connect ip i1[dstip = "203.0.113.122"] as evt1
        proc p1 read ip i1 as evt2
        proc p1 write file f1["%flash_update%"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p1, i1, f1
        """,
    ),
    CorpusQuery(
        "a2",
        "a",
        "multievent",
        f"""
        agentid = 5 {_A2}
        proc p0 start proc p1["%flash_update%"] as evt1
        proc p1 read file f0["%flash_update%"] as evt2
        proc p1 write file f1["%.updater"] as evt3
        proc p1 start proc p2["%.updater"] as evt4
        with evt1 before evt2, evt2 before evt3, evt3 before evt4
        return distinct p0, p1, f1, p2
        """,
    ),
    CorpusQuery(
        "a3",
        "a",
        "multievent",
        f"""
        agentid = 4 {_A2}
        proc p1["%apache%"] accept ip i1 as evt1
        proc p1 recv ip i1 as evt2
        proc p1 write file f1["%shell.php"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p1, f1
        """,
    ),
    CorpusQuery(
        "a4",
        "a",
        "multievent",
        f"""
        agentid = 4 {_A2}
        proc p1["%apache%"] start proc p2 as evt1
        proc p2 read file f1["/etc/shadow"] as evt2
        with evt1 before evt2
        return distinct p1, p2, f1
        """,
    ),
    CorpusQuery(
        "a5",
        "a",
        "multievent",
        f"""
        agentid = 4 {_A2}
        proc p0 start proc p1["%tar%"] as evt1
        proc p1 write file f1["%.cache.tgz"] as evt2
        proc p2["%curl%"] read file f1 as evt3
        proc p2 write ip i1[dstip = "203.0.113.122"] as evt4
        with evt1 before evt2, evt2 before evt3, evt3 before evt4
        return distinct p0, p1, f1, p2, i1
        """,
    ),
)

# ---------------------------------------------------------------------------
# d1-d3: dependency tracking
# ---------------------------------------------------------------------------

D_QUERIES = (
    CorpusQuery(
        "d1",
        "d",
        "dependency",
        f"""
        agentid = 7 {_DEP}
        backward: proc u1["%chrome_update.exe"] ->[read]
          file f1["%chrome_update.exe"] <-[write] proc p1
        return u1, f1, p1
        """,
    ),
    CorpusQuery(
        "d2",
        "d",
        "dependency",
        f"""
        agentid = 9 {_DEP}
        backward: proc u1["%java_update.exe"] ->[read]
          file f1["%java_update.exe"] <-[write] proc p1
        return u1, f1, p1
        """,
    ),
    CorpusQuery(
        "d3",
        "d",
        "dependency",
        f"""
        {_DEP}
        forward: proc p1["%/bin/cp%", agentid = 4] ->[write]
          file f1["/var/www/%info_stealer%"] <-[read] proc p2["%apache%"]
          ->[connect] proc p3[agentid = 5] ->[write] file f2["%info_stealer%"]
        return f1, p1, p2, p3, f2
        """,
    ),
)

# ---------------------------------------------------------------------------
# v1-v5: real-world malware behaviors (Table 4)
# ---------------------------------------------------------------------------

V_QUERIES = (
    CorpusQuery(
        "v1",
        "v",
        "multievent",
        f"""
        agentid = 10 {_MAL}
        proc p1["%7dd95111%"] connect ip i1[dstip = "203.0.113.128"] as evt1
        proc p1 read ip i1 as evt2
        proc p1 start proc p2["%cmd.exe"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p1, i1, p2
        """,
    ),
    CorpusQuery(
        "v2",
        "v",
        "multievent",
        f"""
        agentid = 11 {_MAL}
        proc p1["%42532778%"] write file f1["%keys.log"] as evt1
        proc p1 read file f1 as evt2
        proc p1 write ip i1[dstip = "203.0.113.128"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p1, f1, i1
        """,
    ),
    CorpusQuery(
        "v3",
        "v",
        "multievent",
        f"""
        agentid = 12 {_MAL}
        proc p1["%ee111901%"] write file f1["%autorun.inf"] as evt1
        proc p1 write file f2["E:/%"] as evt2
        return distinct p1, f1, f2
        """,
    ),
    CorpusQuery(
        "v4",
        "v",
        "multievent",
        f"""
        agentid = 13 {_MAL}
        proc p1["%4e720458%"] connect ip i1[dstport = 6667] as evt1
        proc p1 start proc p2["%cmd.exe"] as evt2
        proc p2 write file f1["%sys%.dat"] as evt3
        with evt1 before evt2, evt2 before evt3
        return distinct p1, i1, p2, f1
        """,
    ),
    CorpusQuery(
        "v5",
        "v",
        "multievent",
        f"""
        agentid = 14 {_MAL}
        proc p1["%7dd95111%"] write file f1["%keys.log"] as evt1
        proc p1 write ip i1[dstport = 8080] as evt2
        with evt1 before evt2
        return distinct p1, f1, i1
        """,
    ),
)

# ---------------------------------------------------------------------------
# s1-s6: abnormal system behaviors
# ---------------------------------------------------------------------------

S_QUERIES = (
    CorpusQuery(
        "s1",
        "s",
        "multievent",
        f"""
        agentid = 8 {_ABN}
        proc p2 start proc p1 as evt1
        proc p3 read file[".viminfo" || ".bash_history"] as evt2
        with p1 = p3, evt1 before evt2
        return p2, p1
        sort by p2, p1
        """,
    ),
    CorpusQuery(
        "s2",
        "s",
        "multievent",
        f"""
        agentid = 4 {_ABN}
        proc p1["%apache%"] start proc p2 as evt1
        proc p2 write file f1["/tmp/%"] as evt2
        with evt1 before evt2
        return distinct p1, p2, f1
        """,
    ),
    CorpusQuery(
        "s3",
        "s",
        "multievent",
        f"""
        agentid = 11 {_ABN}
        proc p connect ip i
        return p, count(distinct i) as freq
        group by p
        having freq > 20
        """,
    ),
    CorpusQuery(
        "s4",
        "s",
        "multievent",
        f"""
        agentid = 12 {_ABN}
        proc p1 write file f1["/var/log/%"] as evt1
        proc p1 delete file f1 as evt2
        with evt1 before evt2
        return distinct p1, f1
        """,
    ),
    CorpusQuery(
        "s5",
        "s",
        "anomaly",
        f"""
        agentid = 13 {_ABN}
        window = 1 min, step = 10 sec
        proc p write ip i[dstip = "203.0.113.128"] as evt
        return p, avg(evt.amount) as amt
        group by p
        having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
        """,
    ),
    CorpusQuery(
        "s6",
        "s",
        "anomaly",
        f"""
        agentid = 14 {_ABN}
        window = 2 min, step = 30 sec
        proc p read file f["%Finance%"] as evt
        return p, count(distinct f) as freq
        group by p
        having freq > 2 * (freq[1] + freq[2] + freq[3] + 1) / 3
        """,
    ),
)

PERFORMANCE_QUERIES: Tuple[CorpusQuery, ...] = (
    *A_QUERIES,
    *D_QUERIES,
    *V_QUERIES,
    *S_QUERIES,
)

# Queries with SQL/Cypher/SPL equivalents (the paper omits s5/s6 there).
CONCISENESS_QUERY_IDS: Tuple[str, ...] = tuple(
    q.qid for q in PERFORMANCE_QUERIES if q.qid not in ("s5", "s6")
)

ALL_QUERIES: Tuple[CorpusQuery, ...] = (
    *CASE_STUDY_WITH_ANOMALY,
    *PERFORMANCE_QUERIES,
)


def by_id(qid: str) -> CorpusQuery:
    for query in ALL_QUERIES:
        if query.qid == qid:
            return query
    raise KeyError(f"no corpus query named {qid!r}")


def pattern_counts() -> dict:
    """Patterns per case-study step (the Table 3 '# of Evt Patterns' column)."""
    from repro.lang.parser import parse
    from repro.lang import ast as _ast

    counts: dict = {}
    for query in CASE_STUDY_QUERIES:
        tree = parse(query.text)
        assert isinstance(tree, _ast.MultieventQuery)
        counts.setdefault(query.group, [0, 0])
        counts[query.group][0] += 1
        counts[query.group][1] += len(tree.patterns)
    return {k: tuple(v) for k, v in counts.items()}
