"""The simulated enterprise (paper Fig. 4, scaled down).

The paper deploys on 150 hosts (10 servers, 140 employee stations) for 16
days.  The default simulation scales this to 15 hosts over 16 days; the
roles mirror Fig. 4's environment: a Windows domain with a mail server, a
database server, a web server, and employee stations behind a firewall.

All timestamps are anchored at ``BASE_DAY`` (2017-01-01 UTC) to match the
paper's example queries.  Scenario days are fixed so the query corpus can
carry literal ``(at "...")`` windows:

=============  ==========  ==================================================
scenario       date        contents
=============  ==========  ==================================================
APT c1-c5      2017-01-05  the case-study attack (Sec. 6.2)
s1-s6          2017-01-06  abnormal system behaviors
d1-d3          2017-01-07  dependency-tracking behaviors
a1-a5          2017-01-08  the second APT (Sec. 6.3.1)
v1-v5          2017-01-09  VirusSign malware samples (Table 4)
=============  ==========  ==================================================
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

from repro.model.time import DAY


def _ts(text: str) -> float:
    return (
        _dt.datetime.strptime(text, "%Y-%m-%d")
        .replace(tzinfo=_dt.timezone.utc)
        .timestamp()
    )


BASE_DAY = _ts("2017-01-01")
SIMULATION_DAYS = 16

APT_DAY = _ts("2017-01-05")
ABNORMAL_DAY = _ts("2017-01-06")
DEPENDENCY_DAY = _ts("2017-01-07")
APT2_DAY = _ts("2017-01-08")
MALWARE_DAY = _ts("2017-01-09")

# External addresses (TEST-NET-3 range; the paper obfuscates as XXX.129 etc.)
ATTACKER_IP = "203.0.113.129"
ATTACKER_IP2 = "203.0.113.122"
MALWARE_C2_IP = "203.0.113.128"
UPDATE_SERVER_IP = "198.51.100.10"
JAVA_UPDATE_IP = "198.51.100.11"
MAIL_RELAY_IP = "198.51.100.25"


class HostRole(str, Enum):
    WINDOWS_CLIENT = "windows_client"
    MAIL_SERVER = "mail_server"
    DB_SERVER = "db_server"
    WEB_SERVER = "web_server"
    DEV_STATION = "dev_station"
    EMPLOYEE_STATION = "employee_station"
    DOMAIN_CONTROLLER = "domain_controller"


@dataclass(frozen=True)
class Host:
    agent_id: int
    role: HostRole
    hostname: str
    ip: str
    windows: bool


def _host(agent_id: int, role: HostRole, name: str, windows: bool) -> Host:
    return Host(
        agent_id=agent_id,
        role=role,
        hostname=name,
        ip=f"10.0.0.{agent_id}",
        windows=windows,
    )


# Fig. 4 environment, scaled: agents 1-5 have fixed roles used by the attack
# scenarios; 6-15 are generic stations providing background noise.
HOSTS: Tuple[Host, ...] = (
    _host(1, HostRole.WINDOWS_CLIENT, "win-client-1", True),
    _host(2, HostRole.MAIL_SERVER, "mail-1", False),
    _host(3, HostRole.DB_SERVER, "db-1", True),
    _host(4, HostRole.WEB_SERVER, "web-1", False),
    _host(5, HostRole.DEV_STATION, "dev-1", False),
    _host(6, HostRole.DOMAIN_CONTROLLER, "dc-1", True),
    *(
        _host(i, HostRole.EMPLOYEE_STATION, f"station-{i}", i % 2 == 0)
        for i in range(7, 16)
    ),
)

HOSTS_BY_ID: Dict[int, Host] = {h.agent_id: h for h in HOSTS}

WINDOWS_CLIENT = HOSTS_BY_ID[1]
MAIL_SERVER = HOSTS_BY_ID[2]
DB_SERVER = HOSTS_BY_ID[3]
WEB_SERVER = HOSTS_BY_ID[4]
DEV_STATION = HOSTS_BY_ID[5]


def day_window(day_start: float) -> Tuple[float, float]:
    return day_start, day_start + DAY


def at_text(day_start: float) -> str:
    """The ``(at "...")`` literal selecting ``day_start``'s calendar day."""
    return _dt.datetime.fromtimestamp(day_start, tz=_dt.timezone.utc).strftime(
        "%m/%d/%Y"
    )
