"""Deterministic background workload generator.

Replaces the paper's auditd/ETW agents: produces the benign system activity
of an enterprise — process trees, file I/O, service daemons, browsing,
mail — as ``<subject, operation, object>`` events with realistic attribute
values.  Everything is driven by a seeded :class:`random.Random`, so a given
``(seed, hosts, days, rate)`` always produces the identical event stream
(bit-for-bit reproducible benchmarks).

The mix is deliberately file-heavy (as real monitoring data is), which is
what gives the scheduler's process/network-before-file relationship sort
(Algorithm 1 step 2) its advantage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.model.time import DAY
from repro.storage.ingest import Ingestor
from repro.workload.topology import (
    BASE_DAY,
    HOSTS,
    Host,
    HostRole,
    MAIL_SERVER,
    SIMULATION_DAYS,
)

_SHELLS = ("bash", "sh")
_SHELL_CHILDREN = ("ls", "cat", "grep", "ps", "vim", "python", "make", "git")
_WIN_SHELL_CHILDREN = ("tasklist.exe", "notepad.exe", "ping.exe", "whoami.exe")
_BROWSERS = ("firefox", "chrome")
_WIN_BROWSERS = ("firefox.exe", "chrome.exe")
_USER_FILES = (
    "/home/{user}/notes.txt",
    "/home/{user}/report.doc",
    "/home/{user}/src/main.c",
    "/home/{user}/.cache/session",
    "/tmp/scratch-{n}",
)
_WIN_USER_FILES = (
    "C:/Users/{user}/Documents/notes.txt",
    "C:/Users/{user}/Documents/report.docx",
    "C:/Users/{user}/AppData/Local/Temp/tmp{n}.dat",
    "C:/Users/{user}/Downloads/setup-{n}.msi",
)
_EXTERNAL_SITES = tuple(f"93.184.216.{i}" for i in range(10, 40))


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic enterprise."""

    seed: int = 20170101
    hosts: Sequence[Host] = HOSTS
    days: int = SIMULATION_DAYS
    base_day: float = BASE_DAY
    events_per_host_day: int = 400

    def total_budget(self) -> int:
        return self.events_per_host_day * len(self.hosts) * self.days


@dataclass
class _HostState:
    """Long-lived per-host processes reused across the day's activity."""

    host: Host
    init: object = None
    shell: object = None
    next_pid: int = 1000
    user: str = "user"


class BackgroundGenerator:
    """Emits benign events through an :class:`Ingestor`."""

    def __init__(self, ingestor: Ingestor, config: Optional[GeneratorConfig] = None):
        self.ingestor = ingestor
        self.config = config or GeneratorConfig()
        self.rng = random.Random(self.config.seed)
        self._states: Dict[int, _HostState] = {}

    # -- public API -----------------------------------------------------------

    def run(self) -> int:
        """Generate the full simulation; returns the number of events."""
        before = self.ingestor.events_ingested
        for day in range(self.config.days):
            day_start = self.config.base_day + day * DAY
            for host in self.config.hosts:
                self._host_day(host, day_start)
        return self.ingestor.events_ingested - before

    def run_day(self, day_start: float) -> int:
        before = self.ingestor.events_ingested
        for host in self.config.hosts:
            self._host_day(host, day_start)
        return self.ingestor.events_ingested - before

    # -- per-host simulation ----------------------------------------------------

    def _state(self, host: Host) -> _HostState:
        state = self._states.get(host.agent_id)
        if state is None:
            state = _HostState(host=host, user=f"u{host.agent_id}")
            init_name = "services.exe" if host.windows else "systemd"
            state.init = self.ingestor.process(
                host.agent_id, 1, init_name, user="root", signature="os-vendor"
            )
            self._states[host.agent_id] = state
        return state

    def _pid(self, state: _HostState) -> int:
        state.next_pid += 1
        return state.next_pid

    def _host_day(self, host: Host, day_start: float) -> None:
        state = self._state(host)
        rng = self.rng
        budget = self.config.events_per_host_day
        emitted = 0
        t = day_start + rng.uniform(60, 600)

        # Morning: session shells / explorer start.
        shell_name = "explorer.exe" if host.windows else rng.choice(_SHELLS)
        shell = self.ingestor.process(
            host.agent_id, self._pid(state), shell_name, user=state.user
        )
        self.ingestor.emit(host.agent_id, t, "start", state.init, shell)
        state.shell = shell
        emitted += 1

        while emitted < budget:
            t += rng.expovariate(1.0 / (DAY * 0.6 / budget))
            if t >= day_start + DAY - 1:
                break
            activity = rng.random()
            if activity < 0.55:
                emitted += self._file_activity(state, t)
            elif activity < 0.75:
                emitted += self._process_activity(state, t)
            elif activity < 0.90:
                emitted += self._network_activity(state, t)
            elif activity < 0.95:
                emitted += self._ipc_activity(state, t)
            else:
                emitted += self._role_activity(state, t)

    def _file_activity(self, state: _HostState, t: float) -> int:
        rng = self.rng
        host = state.host
        templates = _WIN_USER_FILES if host.windows else _USER_FILES
        path = rng.choice(templates).format(user=state.user, n=rng.randrange(40))
        target = self.ingestor.file(host.agent_id, path, owner=state.user)
        op = rng.choice(("read", "read", "read", "write", "write", "delete"))
        amount = rng.randrange(64, 65536) if op != "delete" else 0
        self.ingestor.emit(host.agent_id, t, op, state.shell, target, amount=amount)
        return 1

    def _process_activity(self, state: _HostState, t: float) -> int:
        rng = self.rng
        host = state.host
        children = _WIN_SHELL_CHILDREN if host.windows else _SHELL_CHILDREN
        child = self.ingestor.process(
            host.agent_id,
            self._pid(state),
            rng.choice(children),
            user=state.user,
        )
        self.ingestor.emit(host.agent_id, t, "start", state.shell, child)
        emitted = 1
        # children usually touch a file or two
        for _ in range(rng.randrange(0, 3)):
            templates = _WIN_USER_FILES if host.windows else _USER_FILES
            path = rng.choice(templates).format(user=state.user, n=rng.randrange(40))
            target = self.ingestor.file(host.agent_id, path, owner=state.user)
            self.ingestor.emit(
                host.agent_id,
                t + rng.uniform(0.1, 5.0),
                rng.choice(("read", "write")),
                child,
                target,
                amount=rng.randrange(64, 8192),
            )
            emitted += 1
        return emitted

    def _network_activity(self, state: _HostState, t: float) -> int:
        rng = self.rng
        host = state.host
        browser_names = _WIN_BROWSERS if host.windows else _BROWSERS
        browser = self.ingestor.process(
            host.agent_id, 300 + rng.randrange(2), rng.choice(browser_names),
            user=state.user,
        )
        conn = self.ingestor.connection(
            host.agent_id,
            host.ip,
            rng.randrange(20000, 60000),
            rng.choice(_EXTERNAL_SITES),
            443,
        )
        self.ingestor.emit(host.agent_id, t, "connect", browser, conn)
        self.ingestor.emit(
            host.agent_id,
            t + rng.uniform(0.05, 2.0),
            "read",
            browser,
            conn,
            amount=rng.randrange(1024, 1 << 20),
        )
        emitted = 2
        if rng.random() < 0.5:
            cache = self.ingestor.file(
                host.agent_id,
                f"/home/{state.user}/.cache/web/{rng.randrange(200)}"
                if not host.windows
                else f"C:/Users/{state.user}/AppData/Cache/{rng.randrange(200)}",
                owner=state.user,
            )
            self.ingestor.emit(
                host.agent_id,
                t + rng.uniform(0.1, 3.0),
                "write",
                browser,
                cache,
                amount=rng.randrange(512, 65536),
            )
            emitted += 1
        return emitted

    def _ipc_activity(self, state: _HostState, t: float) -> int:
        """Registry reads on Windows, named-pipe traffic on Linux — the
        Sec. 7 monitoring-scope extension."""
        rng = self.rng
        host = state.host
        if host.windows:
            svchost = self.ingestor.process(
                host.agent_id, 900, "svchost.exe", user="SYSTEM",
                signature="microsoft",
            )
            value = self.ingestor.registry_value(
                host.agent_id,
                rng.choice(
                    (
                        "HKLM/SOFTWARE/Microsoft/Windows/CurrentVersion",
                        "HKLM/SYSTEM/CurrentControlSet/Services",
                        "HKCU/Software/Classes",
                    )
                ),
                value_name=f"v{rng.randrange(8)}",
            )
            self.ingestor.emit(host.agent_id, t, "read", svchost, value)
            return 1
        daemon = self.ingestor.process(
            host.agent_id, 901, "syslogd", user="root"
        )
        fifo = self.ingestor.pipe(
            host.agent_id, f"/run/pipe-{rng.randrange(4)}"
        )
        self.ingestor.emit(
            host.agent_id, t, rng.choice(("read", "write")), daemon, fifo,
            amount=rng.randrange(64, 4096),
        )
        return 1

    def _role_activity(self, state: _HostState, t: float) -> int:
        host = state.host
        if host.role is HostRole.WEB_SERVER:
            return self._apache_activity(state, t)
        if host.role is HostRole.DB_SERVER:
            return self._database_activity(state, t)
        if host.role is HostRole.MAIL_SERVER:
            return self._mail_activity(state, t)
        if host.windows:
            return self._outlook_activity(state, t)
        return self._file_activity(state, t)

    def _apache_activity(self, state: _HostState, t: float) -> int:
        rng = self.rng
        host = state.host
        apache = self.ingestor.process(
            host.agent_id, 80, "apache2", user="www-data", signature="apache.org"
        )
        doc = self.ingestor.file(
            host.agent_id,
            f"/var/www/html/page{rng.randrange(30)}.html",
            owner="www-data",
        )
        client = rng.choice(HOSTS)
        conn = self.ingestor.connection(
            host.agent_id, client.ip, rng.randrange(20000, 60000), host.ip, 80
        )
        self.ingestor.emit(host.agent_id, t, "accept", apache, conn)
        self.ingestor.emit(
            host.agent_id, t + 0.02, "read", apache, doc, amount=rng.randrange(1024, 65536)
        )
        self.ingestor.emit(
            host.agent_id, t + 0.05, "send", apache, conn, amount=rng.randrange(1024, 65536)
        )
        return 3

    def _database_activity(self, state: _HostState, t: float) -> int:
        rng = self.rng
        host = state.host
        db = self.ingestor.process(
            host.agent_id, 1433, "sqlservr.exe", user="mssql",
            signature="microsoft",
        )
        data = self.ingestor.file(
            host.agent_id, f"C:/MSSQL/DATA/users_{rng.randrange(4)}.mdf", owner="mssql"
        )
        self.ingestor.emit(
            host.agent_id,
            t,
            rng.choice(("read", "write")),
            db,
            data,
            amount=rng.randrange(4096, 1 << 20),
        )
        return 1

    def _mail_activity(self, state: _HostState, t: float) -> int:
        rng = self.rng
        host = state.host
        postfix = self.ingestor.process(
            host.agent_id, 25, "postfix", user="postfix"
        )
        spool = self.ingestor.file(
            host.agent_id, f"/var/spool/mail/msg{rng.randrange(500)}", owner="postfix"
        )
        self.ingestor.emit(
            host.agent_id, t, "write", postfix, spool, amount=rng.randrange(512, 131072)
        )
        conn = self.ingestor.connection(
            host.agent_id, host.ip, rng.randrange(20000, 60000), "198.51.100.25", 25
        )
        self.ingestor.emit(host.agent_id, t + 0.1, "connect", postfix, conn)
        return 2

    def _outlook_activity(self, state: _HostState, t: float) -> int:
        rng = self.rng
        host = state.host
        outlook = self.ingestor.process(
            host.agent_id, 400, "outlook.exe", user=state.user,
            signature="microsoft",
        )
        conn = self.ingestor.connection(
            host.agent_id, host.ip, rng.randrange(20000, 60000), MAIL_SERVER.ip, 143
        )
        self.ingestor.emit(host.agent_id, t, "connect", outlook, conn)
        self.ingestor.emit(
            host.agent_id, t + 0.2, "read", outlook, conn, amount=rng.randrange(512, 262144)
        )
        return 2
