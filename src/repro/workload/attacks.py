"""Attack scenario injection: the APT case study and the second APT.

``inject_apt_case_study`` replays the five steps of the paper's Fig. 4
attack on the simulated enterprise (Sec. 6.2): initial compromise via a
malicious Excel attachment, malware infection, privilege escalation with
gsecdump, penetration into the database server via a VBScript dropper, and
data exfiltration through osql/sqlservr dumps sent to the attacker's
address.  ``inject_apt2`` replays the second APT (a1-a5, Sec. 6.3.1) used
for the performance/conciseness evaluation.

Both return a ground-truth dict (entities and timestamps) the tests assert
query results against.
"""

from __future__ import annotations

from typing import Dict

from repro.storage.ingest import Ingestor
from repro.workload.topology import (
    APT2_DAY,
    APT_DAY,
    ATTACKER_IP,
    ATTACKER_IP2,
    DB_SERVER,
    MAIL_SERVER,
    WEB_SERVER,
    WINDOWS_CLIENT,
)

# Offsets (seconds since the attack day's midnight) for each step; the steps
# are spaced ~1 hour apart, mirroring a day-long intrusion.
_C1_T = 9 * 3600.0  # 09:00 initial compromise
_C2_T = 10 * 3600.0  # 10:00 malware infection
_C3_T = 11 * 3600.0  # 11:00 privilege escalation
_C4_T = 13 * 3600.0  # 13:00 penetration into DB server
_C5_T = 15 * 3600.0  # 15:00 data exfiltration

EXCEL_ATTACHMENT = "C:/Users/u1/Downloads/quarterly_report.xlsm"
PAYLOAD_EXE = "C:/Users/u1/AppData/Local/Temp/payload.exe"
GSECDUMP_EXE = "C:/Users/u1/AppData/Local/Temp/gsecdump.exe"
SAM_FILE = "C:/Windows/System32/config/SAM"
DROPPER_VBS = "C:/Windows/Temp/dropper.vbs"
SBBLV_EXE = "C:/Windows/Temp/sbblv.exe"
BACKUP_DUMP = "C:/MSSQL/BACKUP/backup1.dmp"


def inject_apt_case_study(
    ingestor: Ingestor, day_start: float = APT_DAY
) -> Dict[str, object]:
    """Inject attack steps c1-c5; returns ground truth for assertions."""
    victim = WINDOWS_CLIENT.agent_id
    db = DB_SERVER.agent_id
    truth: Dict[str, object] = {"day": day_start}

    # ---- c1: initial compromise (phishing email with Excel macro) --------
    t = day_start + _C1_T
    outlook = ingestor.process(victim, 400, "outlook.exe", user="u1",
                               signature="microsoft")
    mail_conn = ingestor.connection(
        victim, WINDOWS_CLIENT.ip, 52311, MAIL_SERVER.ip, 143
    )
    attachment = ingestor.file(victim, EXCEL_ATTACHMENT, owner="u1")
    ingestor.emit(victim, t, "connect", outlook, mail_conn)
    ingestor.emit(victim, t + 2, "read", outlook, mail_conn, amount=184320)
    ingestor.emit(victim, t + 5, "write", outlook, attachment, amount=184320)
    truth["c1"] = {"outlook": outlook, "attachment": attachment, "t": t}

    # ---- c2: malware infection (macro downloads + runs payload) ----------
    t = day_start + _C2_T
    excel = ingestor.process(victim, 2100, "excel.exe", user="u1",
                             signature="microsoft")
    ingestor.emit(victim, t, "start", outlook, excel)
    ingestor.emit(victim, t + 3, "read", excel, attachment, amount=184320)
    dl_conn = ingestor.connection(
        victim, WINDOWS_CLIENT.ip, 52390, ATTACKER_IP, 443
    )
    payload_file = ingestor.file(victim, PAYLOAD_EXE, owner="u1")
    ingestor.emit(victim, t + 10, "connect", excel, dl_conn)
    ingestor.emit(victim, t + 12, "read", excel, dl_conn, amount=921600)
    ingestor.emit(victim, t + 15, "write", excel, payload_file, amount=921600)
    payload = ingestor.process(victim, 2188, "payload.exe", user="u1")
    ingestor.emit(victim, t + 20, "start", excel, payload)
    backdoor = ingestor.connection(
        victim, WINDOWS_CLIENT.ip, 52400, ATTACKER_IP, 4444
    )
    ingestor.emit(victim, t + 25, "connect", payload, backdoor)
    ingestor.emit(victim, t + 30, "write", payload, backdoor, amount=2048)
    truth["c2"] = {
        "excel": excel,
        "payload_file": payload_file,
        "payload": payload,
        "backdoor": backdoor,
        "t": t,
    }

    # ---- c3: privilege escalation (port scan + gsecdump) ------------------
    t = day_start + _C3_T
    for i, port in enumerate((135, 445, 1433, 3389)):
        scan = ingestor.connection(
            victim, WINDOWS_CLIENT.ip, 53000 + i, DB_SERVER.ip, port
        )
        ingestor.emit(victim, t + i, "connect", payload, scan)
    gsec_file = ingestor.file(victim, GSECDUMP_EXE, owner="u1")
    ingestor.emit(victim, t + 60, "write", payload, gsec_file, amount=524288)
    gsecdump = ingestor.process(victim, 2300, "gsecdump.exe", user="u1")
    ingestor.emit(victim, t + 65, "start", payload, gsecdump)
    sam = ingestor.file(victim, SAM_FILE, owner="SYSTEM")
    ingestor.emit(victim, t + 70, "read", gsecdump, sam, amount=65536)
    ingestor.emit(victim, t + 80, "write", gsecdump, backdoor, amount=8192)
    truth["c3"] = {"gsecdump": gsecdump, "sam": sam, "t": t}

    # ---- c4: penetration into the database server --------------------------
    t = day_start + _C4_T
    # attacker session reaches the DB server with the stolen credentials
    db_login = ingestor.connection(
        db, WINDOWS_CLIENT.ip, 53100, DB_SERVER.ip, 1433
    )
    sqlservr = ingestor.process(db, 1433, "sqlservr.exe", user="mssql",
                                signature="microsoft")
    ingestor.emit(db, t, "accept", sqlservr, db_login)
    cmdshell = ingestor.process(db, 3000, "cmd.exe", user="mssql")
    ingestor.emit(db, t + 5, "start", sqlservr, cmdshell)
    wscript = ingestor.process(db, 3010, "wscript.exe", user="mssql",
                               signature="microsoft")
    dropper = ingestor.file(db, DROPPER_VBS, owner="mssql")
    ingestor.emit(db, t + 10, "write", cmdshell, dropper, amount=4096)
    ingestor.emit(db, t + 12, "start", cmdshell, wscript)
    ingestor.emit(db, t + 14, "read", wscript, dropper, amount=4096)
    sbblv_file = ingestor.file(db, SBBLV_EXE, owner="mssql")
    ingestor.emit(db, t + 18, "write", wscript, sbblv_file, amount=786432)
    sbblv = ingestor.process(db, 3020, "sbblv.exe", user="mssql")
    ingestor.emit(db, t + 22, "start", wscript, sbblv)
    backdoor2 = ingestor.connection(db, DB_SERVER.ip, 54000, ATTACKER_IP, 443)
    ingestor.emit(db, t + 26, "connect", sbblv, backdoor2)
    truth["c4"] = {
        "cmdshell": cmdshell,
        "wscript": wscript,
        "dropper": dropper,
        "sbblv_file": sbblv_file,
        "sbblv": sbblv,
        "t": t,
    }

    # ---- c5: data exfiltration (osql dump + large transfer) ----------------
    t = day_start + _C5_T
    osql = ingestor.process(db, 3100, "osql.exe", user="mssql",
                            signature="microsoft")
    ingestor.emit(db, t, "start", cmdshell, osql)
    dump = ingestor.file(db, BACKUP_DUMP, owner="mssql")
    ingestor.emit(db, t + 20, "write", sqlservr, dump, amount=52428800)
    ingestor.emit(db, t + 60, "read", sbblv, dump, amount=52428800)
    # steady low-rate beaconing, then the exfiltration burst that trips the
    # network-transfer anomaly detector (SMA3, Query 5)
    for i in range(18):
        ingestor.emit(db, t + 90 + i * 10, "write", sbblv, backdoor2, amount=4096)
    for i in range(6):
        ingestor.emit(
            db, t + 300 + i * 10, "write", sbblv, backdoor2, amount=13107200
        )
    truth["c5"] = {
        "osql": osql,
        "dump": dump,
        "sqlservr": sqlservr,
        "sbblv": sbblv,
        "exfil_conn": backdoor2,
        "t": t,
    }
    return truth


# ---------------------------------------------------------------------------
# second APT (a1-a5) — used for Figs. 6-8
# ---------------------------------------------------------------------------

FLASH_INSTALLER = "/home/u5/Downloads/flash_update.bin"
IMPLANT_BIN = "/home/u5/.local/share/.updater"
WEB_SHELL = "/var/www/html/uploads/shell.php"
SHADOW_FILE = "/etc/shadow"
EXFIL_ARCHIVE = "/tmp/.cache.tgz"


def inject_apt2(ingestor: Ingestor, day_start: float = APT2_DAY) -> Dict[str, object]:
    """Inject the second APT (a1-a5) on the dev station + web server."""
    dev = 5  # dev-1
    web = WEB_SERVER.agent_id
    truth: Dict[str, object] = {"day": day_start}

    # a1: drive-by download of a fake flash update
    t = day_start + 9.5 * 3600
    firefox = ingestor.process(dev, 301, "firefox", user="u5")
    dl = ingestor.connection(dev, "10.0.0.5", 41000, ATTACKER_IP2, 80)
    installer = ingestor.file(dev, FLASH_INSTALLER, owner="u5")
    ingestor.emit(dev, t, "connect", firefox, dl)
    ingestor.emit(dev, t + 2, "read", firefox, dl, amount=1572864)
    ingestor.emit(dev, t + 4, "write", firefox, installer, amount=1572864)
    truth["a1"] = {"firefox": firefox, "installer": installer, "t": t}

    # a2: user runs the installer; it drops and persists an implant
    t = day_start + 10 * 3600
    shell = ingestor.process(dev, 1100, "bash", user="u5")
    flash = ingestor.process(dev, 1180, "flash_update.bin", user="u5")
    ingestor.emit(dev, t, "start", shell, flash)
    ingestor.emit(dev, t + 1, "read", flash, installer, amount=1572864)
    implant_file = ingestor.file(dev, IMPLANT_BIN, owner="u5")
    ingestor.emit(dev, t + 3, "write", flash, implant_file, amount=917504)
    implant = ingestor.process(dev, 1200, ".updater", user="u5")
    ingestor.emit(dev, t + 6, "start", flash, implant)
    c2 = ingestor.connection(dev, "10.0.0.5", 41500, ATTACKER_IP2, 8443)
    ingestor.emit(dev, t + 10, "connect", implant, c2)
    truth["a2"] = {"flash": flash, "implant": implant, "implant_file": implant_file}

    # a3: lateral movement — implant uploads a web shell to the web server
    t = day_start + 11 * 3600
    upload = ingestor.connection(dev, "10.0.0.5", 41600, WEB_SERVER.ip, 80)
    ingestor.emit(dev, t, "connect", implant, upload)
    ingestor.emit(dev, t + 1, "send", implant, upload, amount=6144)
    apache = ingestor.process(web, 80, "apache2", user="www-data",
                              signature="apache.org")
    recv = ingestor.connection(web, "10.0.0.5", 41600, WEB_SERVER.ip, 80)
    ingestor.emit(web, t + 2, "accept", apache, recv)
    ingestor.emit(web, t + 3, "recv", apache, recv, amount=6144)
    webshell = ingestor.file(web, WEB_SHELL, owner="www-data")
    ingestor.emit(web, t + 5, "write", apache, webshell, amount=6144)
    truth["a3"] = {"apache": apache, "webshell": webshell}

    # a4: web shell spawns a shell that reads credentials
    t = day_start + 12 * 3600
    www_shell = ingestor.process(web, 2400, "sh", user="www-data")
    ingestor.emit(web, t, "start", apache, www_shell)
    shadow = ingestor.file(web, SHADOW_FILE, owner="root")
    ingestor.emit(web, t + 4, "read", www_shell, shadow, amount=4096)
    truth["a4"] = {"www_shell": www_shell, "shadow": shadow}

    # a5: staging + exfiltration from the web server
    t = day_start + 13 * 3600
    tar = ingestor.process(web, 2500, "tar", user="www-data")
    ingestor.emit(web, t, "start", www_shell, tar)
    archive = ingestor.file(web, EXFIL_ARCHIVE, owner="www-data")
    ingestor.emit(web, t + 5, "write", tar, archive, amount=20971520)
    exfil = ingestor.connection(web, WEB_SERVER.ip, 42000, ATTACKER_IP2, 443)
    curl = ingestor.process(web, 2510, "curl", user="www-data")
    ingestor.emit(web, t + 10, "start", www_shell, curl)
    ingestor.emit(web, t + 12, "read", curl, archive, amount=20971520)
    ingestor.emit(web, t + 15, "connect", curl, exfil)
    ingestor.emit(web, t + 18, "write", curl, exfil, amount=20971520)
    truth["a5"] = {"tar": tar, "archive": archive, "curl": curl, "exfil": exfil}
    return truth
