"""Dependency-tracking, malware and abnormal-behavior scenarios (Sec. 6.3.1).

* d1-d3 — causal dependency chains: Chrome update provenance, Java update
  provenance, and the cross-host ramification of ``info_stealer`` (the
  paper's Query 3).
* v1-v5 — the VirusSign malware samples of Table 4 (Sysbot, Hooker,
  Autorun categories), replayed from their behavior reports.
* s1-s6 — abnormal system behaviors: command history probing, suspicious
  web service, frequent network access, erasing traces from system files,
  network access spike, abnormal file access.
"""

from __future__ import annotations

from typing import Dict

from repro.storage.ingest import Ingestor
from repro.workload.topology import (
    ABNORMAL_DAY,
    DEPENDENCY_DAY,
    DEV_STATION,
    JAVA_UPDATE_IP,
    MALWARE_C2_IP,
    MALWARE_DAY,
    UPDATE_SERVER_IP,
    WEB_SERVER,
)

# ---------------------------------------------------------------------------
# d1-d3: dependency tracking behaviors
# ---------------------------------------------------------------------------

CHROME_UPDATE = "C:/Users/u7/AppData/Local/Temp/chrome_update.exe"
JAVA_UPDATE = "C:/Users/u9/AppData/Local/Temp/java_update.exe"
INFO_STEALER_SRC = "/var/www/html/info_stealer.sh"
INFO_STEALER_COPY = "/home/u5/downloads/info_stealer.sh"


def inject_dependency_behaviors(
    ingestor: Ingestor, day_start: float = DEPENDENCY_DAY
) -> Dict[str, object]:
    truth: Dict[str, object] = {"day": day_start}

    # d1: origin of a Chrome update executable (backward provenance chain:
    # chrome.exe downloaded it from the update server, then executed it).
    agent = 7
    t = day_start + 10 * 3600
    chrome = ingestor.process(agent, 310, "chrome.exe", user="u7",
                              signature="google")
    upd_conn = ingestor.connection(agent, "10.0.0.7", 43000, UPDATE_SERVER_IP, 443)
    update_file = ingestor.file(agent, CHROME_UPDATE, owner="u7")
    ingestor.emit(agent, t, "connect", chrome, upd_conn)
    ingestor.emit(agent, t + 2, "read", chrome, upd_conn, amount=3145728)
    ingestor.emit(agent, t + 5, "write", chrome, update_file, amount=3145728)
    updater = ingestor.process(agent, 3300, "chrome_update.exe", user="u7",
                               signature="google")
    ingestor.emit(agent, t + 20, "start", chrome, updater)
    ingestor.emit(agent, t + 25, "read", updater, update_file, amount=3145728)
    truth["d1"] = {"chrome": chrome, "update_file": update_file, "agent": agent}

    # d2: origin of a Java update executable, same shape on another host.
    agent = 9
    t = day_start + 11 * 3600
    java = ingestor.process(agent, 320, "java.exe", user="u9", signature="oracle")
    upd_conn = ingestor.connection(agent, "10.0.0.9", 43100, JAVA_UPDATE_IP, 443)
    update_file = ingestor.file(agent, JAVA_UPDATE, owner="u9")
    ingestor.emit(agent, t, "connect", java, upd_conn)
    ingestor.emit(agent, t + 3, "read", java, upd_conn, amount=2097152)
    ingestor.emit(agent, t + 6, "write", java, update_file, amount=2097152)
    updater = ingestor.process(agent, 3400, "java_update.exe", user="u9",
                               signature="oracle")
    ingestor.emit(agent, t + 30, "start", java, updater)
    ingestor.emit(agent, t + 33, "read", updater, update_file, amount=2097152)
    truth["d2"] = {"java": java, "update_file": update_file, "agent": agent}

    # d3: forward ramification of info_stealer (the paper's Query 3):
    # /bin/cp writes it under /var/www on the web server; apache serves it;
    # wget on the dev station downloads and stores a copy.
    web = WEB_SERVER.agent_id
    dev = DEV_STATION.agent_id
    t = day_start + 14 * 3600
    cp = ingestor.process(web, 2600, "/bin/cp", user="root")
    stealer_src = ingestor.file(web, INFO_STEALER_SRC, owner="www-data")
    ingestor.emit(web, t, "write", cp, stealer_src, amount=24576)
    apache = ingestor.process(web, 80, "apache2", user="www-data",
                              signature="apache.org")
    ingestor.emit(web, t + 120, "read", apache, stealer_src, amount=24576)
    # cross-host flow: both hosts record the same (dst_ip, dst_port) tuple
    flow_a = ingestor.connection(web, WEB_SERVER.ip, 80, DEV_STATION.ip, 44022)
    flow_b = ingestor.connection(dev, WEB_SERVER.ip, 80, DEV_STATION.ip, 44022)
    ingestor.emit(web, t + 121, "send", apache, flow_a, amount=24576)
    wget = ingestor.process(dev, 2700, "wget", user="u5")
    ingestor.emit(dev, t + 122, "recv", wget, flow_b, amount=24576)
    stealer_copy = ingestor.file(dev, INFO_STEALER_COPY, owner="u5")
    ingestor.emit(dev, t + 125, "write", wget, stealer_copy, amount=24576)
    truth["d3"] = {
        "cp": cp,
        "stealer_src": stealer_src,
        "apache": apache,
        "wget": wget,
        "stealer_copy": stealer_copy,
    }
    return truth


# ---------------------------------------------------------------------------
# v1-v5: real-world malware behaviors (Table 4)
# ---------------------------------------------------------------------------

MALWARE_SAMPLES = (
    ("v1", "7dd95111e9e100b6243ca96b9b322120", "Trojan.Sysbot", 10),
    ("v2", "425327783e88bb6492753849bc43b7a0", "Trojan.Hooker", 11),
    ("v3", "ee111901739531d6963ab1ee3ecaf280", "Virus.Autorun", 12),
    ("v4", "4e720458c357310da684018f4a254dd0", "Virus.Sysbot", 13),
    ("v5", "7dd95111e9e100b6243ca96b9b322120", "Trojan.Hooker", 14),
)


def inject_malware_behaviors(
    ingestor: Ingestor, day_start: float = MALWARE_DAY
) -> Dict[str, object]:
    """Replay the five VirusSign samples per their behavior categories."""
    truth: Dict[str, object] = {"day": day_start}
    for i, (vid, name, category, agent) in enumerate(MALWARE_SAMPLES):
        t = day_start + (9 + i) * 3600
        exe = f"{name}.exe"
        shell = ingestor.process(agent, 1100, "explorer.exe", user=f"u{agent}")
        malware = ingestor.process(agent, 5000 + i, exe, user=f"u{agent}")
        ingestor.emit(agent, t, "start", shell, malware)
        if "Sysbot" in category:
            # bot behavior: registry persistence + C2 beaconing + shells
            run_key = ingestor.registry_value(
                agent,
                "HKCU/Software/Microsoft/Windows/CurrentVersion/Run",
                value_name=name[:8],
            )
            ingestor.emit(agent, t + 2, "write", malware, run_key)
            c2 = ingestor.connection(
                agent, f"10.0.0.{agent}", 45000 + i, MALWARE_C2_IP, 6667
            )
            ingestor.emit(agent, t + 5, "connect", malware, c2)
            for k in range(4):
                ingestor.emit(agent, t + 10 + k * 30, "read", malware, c2, amount=256)
            bot_cmd = ingestor.process(agent, 5100 + i, "cmd.exe", user=f"u{agent}")
            ingestor.emit(agent, t + 40, "start", malware, bot_cmd)
            spool = ingestor.file(agent, f"C:/Windows/Temp/sys{i}.dat", owner="SYSTEM")
            ingestor.emit(agent, t + 50, "write", bot_cmd, spool, amount=8192)
        elif "Hooker" in category:
            # keylogger: repeated keystroke-log writes + periodic upload
            keylog = ingestor.file(
                agent, f"C:/Users/u{agent}/AppData/Local/Temp/keys.log",
                owner=f"u{agent}",
            )
            for k in range(6):
                ingestor.emit(
                    agent, t + 10 + k * 60, "write", malware, keylog, amount=512
                )
            c2 = ingestor.connection(
                agent, f"10.0.0.{agent}", 45100 + i, MALWARE_C2_IP, 8080
            )
            ingestor.emit(agent, t + 400, "connect", malware, c2)
            ingestor.emit(agent, t + 405, "read", malware, keylog, amount=3072)
            ingestor.emit(agent, t + 410, "write", malware, c2, amount=3072)
        else:  # Autorun
            autorun = ingestor.file(agent, "E:/autorun.inf", owner=f"u{agent}")
            self_copy = ingestor.file(agent, f"E:/{name}.exe", owner=f"u{agent}")
            ingestor.emit(agent, t + 5, "write", malware, autorun, amount=128)
            ingestor.emit(agent, t + 8, "write", malware, self_copy, amount=65536)
        truth[vid] = {"name": exe, "category": category, "agent": agent, "t": t}
    return truth


# ---------------------------------------------------------------------------
# s1-s6: abnormal system behaviors
# ---------------------------------------------------------------------------


def inject_abnormal_behaviors(
    ingestor: Ingestor, day_start: float = ABNORMAL_DAY
) -> Dict[str, object]:
    truth: Dict[str, object] = {"day": day_start}

    # s1: command history probing (the paper's Query 2 shape), agent 8
    agent = 8
    t = day_start + 9 * 3600
    sshd = ingestor.process(agent, 22, "sshd", user="root")
    probe_shell = ingestor.process(agent, 6000, "bash", user="u8")
    ingestor.emit(agent, t, "start", sshd, probe_shell)
    viminfo = ingestor.file(agent, ".viminfo", owner="u8")
    history = ingestor.file(agent, ".bash_history", owner="u8")
    ingestor.emit(agent, t + 30, "read", probe_shell, viminfo, amount=2048)
    ingestor.emit(agent, t + 35, "read", probe_shell, history, amount=4096)
    truth["s1"] = {"parent": sshd, "shell": probe_shell, "agent": agent}

    # s2: suspicious web service — apache spawns an interactive shell
    web = WEB_SERVER.agent_id
    t = day_start + 10 * 3600
    apache = ingestor.process(web, 80, "apache2", user="www-data",
                              signature="apache.org")
    rogue = ingestor.process(web, 6100, "bash", user="www-data")
    ingestor.emit(web, t, "start", apache, rogue)
    drop = ingestor.file(web, "/tmp/.x_backdoor", owner="www-data")
    ingestor.emit(web, t + 10, "write", rogue, drop, amount=16384)
    truth["s2"] = {"apache": apache, "rogue": rogue}

    # s3: frequent network access — one process touches many distinct IPs
    agent = 11
    t = day_start + 11 * 3600
    scanner = ingestor.process(agent, 6200, "nmap", user=f"u{agent}")
    for k in range(40):
        probe = ingestor.connection(
            agent, f"10.0.0.{agent}", 46000 + k, f"192.0.2.{k + 1}", 443
        )
        ingestor.emit(agent, t + k * 2, "connect", scanner, probe)
        ingestor.emit(agent, t + k * 2 + 1, "read", scanner, probe, amount=64)
    truth["s3"] = {"scanner": scanner, "agent": agent, "distinct_ips": 40}

    # s4: erasing traces from system files
    agent = 12
    t = day_start + 12 * 3600
    cleaner_shell = ingestor.process(agent, 6300, "bash", user="root")
    cleaner = ingestor.process(agent, 6310, "shred", user="root")
    ingestor.emit(agent, t, "start", cleaner_shell, cleaner)
    for k, log in enumerate(("auth.log", "syslog", "wtmp")):
        logfile = ingestor.file(agent, f"/var/log/{log}", owner="root")
        ingestor.emit(agent, t + 5 + k, "write", cleaner, logfile, amount=0)
        ingestor.emit(agent, t + 8 + k, "delete", cleaner, logfile)
    truth["s4"] = {"cleaner": cleaner, "agent": agent}

    # s5: network access spike — steady beaconing then a large burst
    agent = 13
    t = day_start + 13 * 3600
    beacon = ingestor.process(agent, 6400, "syncagent", user=f"u{agent}")
    sink = ingestor.connection(agent, f"10.0.0.{agent}", 47000, MALWARE_C2_IP, 443)
    ingestor.emit(agent, t, "connect", beacon, sink)
    for k in range(24):
        ingestor.emit(agent, t + 10 + k * 10, "write", beacon, sink, amount=2048)
    for k in range(6):
        ingestor.emit(agent, t + 260 + k * 10, "write", beacon, sink,
                      amount=8388608)
    truth["s5"] = {"beacon": beacon, "agent": agent, "sink": sink}

    # s6: abnormal file access — burst of distinct sensitive-file reads
    agent = 14
    t = day_start + 14 * 3600
    harvester = ingestor.process(agent, 6500, "python", user=f"u{agent}")
    for k in range(30):
        secret = ingestor.file(
            agent, f"C:/Users/Shared/Finance/acct_{k:03d}.xlsx", owner="finance"
        )
        ingestor.emit(agent, t + 300 + k * 3, "read", harvester, secret,
                      amount=32768)
    truth["s6"] = {"harvester": harvester, "agent": agent, "files": 30}
    return truth
