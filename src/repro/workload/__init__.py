"""Synthetic enterprise workload and the paper's attack scenarios.

Substitutes for the paper's auditd/ETW deployment on 150 hosts: a seeded,
deterministic background-activity generator plus scripted injections of
every evaluated behavior (APT case study c1-c5, second APT a1-a5,
dependency chains d1-d3, malware samples v1-v5, abnormal behaviors s1-s6),
and the AIQL query corpus that investigates them.
"""

from repro.workload.attacks import inject_apt2, inject_apt_case_study
from repro.workload.behaviors import (
    MALWARE_SAMPLES,
    inject_abnormal_behaviors,
    inject_dependency_behaviors,
    inject_malware_behaviors,
)
from repro.workload.corpus import (
    ALL_QUERIES,
    CASE_STUDY_QUERIES,
    CASE_STUDY_WITH_ANOMALY,
    CONCISENESS_QUERY_IDS,
    C5_ANOMALY,
    CorpusQuery,
    PERFORMANCE_QUERIES,
    by_id,
    pattern_counts,
)
from repro.workload.generator import BackgroundGenerator, GeneratorConfig
from repro.workload.loader import (
    ALL_STORES,
    Enterprise,
    build_enterprise,
)
from repro.workload.topology import (
    APT2_DAY,
    APT_DAY,
    ABNORMAL_DAY,
    ATTACKER_IP,
    ATTACKER_IP2,
    BASE_DAY,
    DEPENDENCY_DAY,
    HOSTS,
    HOSTS_BY_ID,
    Host,
    HostRole,
    MALWARE_C2_IP,
    MALWARE_DAY,
    SIMULATION_DAYS,
)

__all__ = [
    "ALL_QUERIES",
    "ALL_STORES",
    "APT2_DAY",
    "APT_DAY",
    "ABNORMAL_DAY",
    "ATTACKER_IP",
    "ATTACKER_IP2",
    "BASE_DAY",
    "BackgroundGenerator",
    "C5_ANOMALY",
    "CASE_STUDY_QUERIES",
    "CASE_STUDY_WITH_ANOMALY",
    "CONCISENESS_QUERY_IDS",
    "CorpusQuery",
    "DEPENDENCY_DAY",
    "Enterprise",
    "GeneratorConfig",
    "HOSTS",
    "HOSTS_BY_ID",
    "Host",
    "HostRole",
    "MALWARE_C2_IP",
    "MALWARE_DAY",
    "MALWARE_SAMPLES",
    "PERFORMANCE_QUERIES",
    "SIMULATION_DAYS",
    "build_enterprise",
    "by_id",
    "inject_abnormal_behaviors",
    "inject_apt2",
    "inject_apt_case_study",
    "inject_dependency_behaviors",
    "inject_malware_behaviors",
    "pattern_counts",
]
