"""One-call construction of the evaluation deployment.

``build_enterprise`` assembles the whole Sec. 6 setup: a shared entity
registry, every requested storage backend attached to one ingestor (so all
stores hold byte-identical data, the paper's fairness requirement), the
seeded background workload, and all attack scenario injections.  Tests,
examples and benchmarks all start from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.model.entities import EntityRegistry
from repro.service.stream import StreamSession
from repro.storage.database import EventStore
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionScheme
from repro.storage.segments import SegmentedStore
from repro.workload.attacks import inject_apt2, inject_apt_case_study
from repro.workload.behaviors import (
    inject_abnormal_behaviors,
    inject_dependency_behaviors,
    inject_malware_behaviors,
)
from repro.workload.generator import BackgroundGenerator, GeneratorConfig
from repro.workload.topology import HOSTS

DEFAULT_STORES = ("partitioned",)
ALL_STORES = ("partitioned", "flat", "segmented_domain", "segmented_arrival")


@dataclass
class Enterprise:
    """The deployed evaluation environment."""

    ingestor: Ingestor
    stores: Dict[str, object]
    truths: Dict[str, object] = field(default_factory=dict)
    background_events: int = 0
    # Set when the deployment was populated through a live StreamSession
    # (build_enterprise(stream_batch_size=...)) instead of a burst load.
    session: Optional[StreamSession] = None

    @property
    def registry(self) -> EntityRegistry:
        return self.ingestor.registry

    def store(self, name: str = "partitioned"):
        return self.stores[name]

    @property
    def total_events(self) -> int:
        return self.ingestor.events_ingested


def build_enterprise(
    stores: Sequence[str] = DEFAULT_STORES,
    events_per_host_day: int = 120,
    days: int = 16,
    seed: int = 20170101,
    hosts=HOSTS,
    segments: int = 5,
    inject_attacks: bool = True,
    stream_batch_size: Optional[int] = None,
    ingestor: Optional[Ingestor] = None,
) -> Enterprise:
    """Build and populate the evaluation environment.

    ``events_per_host_day`` scales the background noise; the scenario
    injections are fixed-size.  The default (120 ev/host/day x 15 hosts x
    16 days ~ 30k background events) keeps the test suite fast; benchmarks
    raise it.

    ``stream_batch_size`` switches population from a burst load to live
    streaming: the whole workload (background and attacks) is appended
    through a :class:`StreamSession` and committed in batches of that size,
    exercising the exact write path a production deployment uses.  The
    session is returned on :attr:`Enterprise.session` for further live
    appends.  Either way every attached store ingests the identical event
    sequence (the Sec. 6.2.2 fairness requirement).

    ``ingestor`` feeds the workload into an externally wired deployment
    (e.g. a durable :class:`~repro.core.system.AIQLSystem` whose tiered
    store and write-ahead log are already attached); pass ``stores=()``
    with it, since its stores already exist.
    """
    if ingestor is not None and stores:
        raise ValueError(
            "pass stores=() with an external ingestor: its stores are "
            "already attached"
        )
    if ingestor is None:
        ingestor = Ingestor()
    built: Dict[str, object] = {}
    for name in stores:
        if name == "partitioned":
            built[name] = EventStore(
                registry=ingestor.registry, scheme=PartitionScheme()
            )
        elif name == "flat":
            built[name] = FlatStore(registry=ingestor.registry)
        elif name == "segmented_domain":
            built[name] = SegmentedStore(
                registry=ingestor.registry, segments=segments, policy="domain"
            )
        elif name == "segmented_arrival":
            built[name] = SegmentedStore(
                registry=ingestor.registry, segments=segments, policy="arrival"
            )
        else:
            raise ValueError(
                f"unknown store {name!r}; expected one of {ALL_STORES}"
            )
        ingestor.attach(built[name])

    config = GeneratorConfig(
        seed=seed,
        hosts=hosts,
        days=days,
        events_per_host_day=events_per_host_day,
    )
    session: Optional[StreamSession] = None
    feed = ingestor
    if stream_batch_size is not None:
        session = StreamSession(ingestor, batch_size=stream_batch_size)
        feed = session
    background = BackgroundGenerator(feed, config).run()

    truths: Dict[str, object] = {}
    if inject_attacks:
        truths["apt"] = inject_apt_case_study(feed)
        truths["apt2"] = inject_apt2(feed)
        truths["dependency"] = inject_dependency_behaviors(feed)
        truths["malware"] = inject_malware_behaviors(feed)
        truths["abnormal"] = inject_abnormal_behaviors(feed)

    if session is not None:
        session.commit()

    return Enterprise(
        ingestor=ingestor,
        stores=built,
        truths=truths,
        background_events=background,
        session=session,
    )
