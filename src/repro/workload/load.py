"""Open-loop constant-rate load generation against the network service.

A closed-loop client (send, wait, send again) slows down exactly when
the server does, so its latency numbers hide overload — the classic
*coordinated omission* problem.  This harness is open-loop, wrk2-style:

* the fleet fires requests on a fixed schedule derived only from the
  target rate — request ``i`` of a client is *due* at
  ``epoch + i / client_rate`` regardless of how the server is doing;
* every latency sample is measured **from the scheduled due time**, not
  from when the socket write actually happened, so time a request spent
  waiting behind a stalled connection counts against the server;
* a client that falls behind does not re-plan its schedule — it works
  through the backlog, accumulating the queueing delay into the
  percentiles exactly as a real arrival process would.

The fleet speaks the versioned :mod:`repro.api` wire schema over
keep-alive HTTP (one connection per client, reconnecting on failure)
and reports CO-free p50/p99/p999 latencies plus a status breakdown —
``429`` rejections are tallied separately from errors, since shedding
load is the *correct* overload response.

:class:`AlertListener` is the WebSocket side: it registers a standing
query and counts pushed alerts, for asserting zero alert loss while the
HTTP fleet hammers the same server.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro import api
from repro.server.http import read_response, request_bytes
from repro.server import websocket


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list (0 if empty)."""
    if not sorted_samples:
        return 0.0
    rank = min(len(sorted_samples) - 1, int(q * len(sorted_samples)))
    return sorted_samples[rank]


@dataclass
class LoadReport:
    """One open-loop run's outcome."""

    target_rate: float
    wall_s: float
    scheduled: int = 0
    completed: int = 0
    ok: int = 0
    rejected: int = 0  # 429 server.overloaded — shed, not failed
    errors: int = 0
    reconnects: int = 0
    rows: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    rejected_latencies_ms: List[float] = field(default_factory=list)
    error_samples: List[str] = field(default_factory=list)

    @property
    def achieved_rate(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def ok_rate(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    def quantiles_ms(self) -> Dict[str, float]:
        samples = sorted(self.latencies_ms)
        return {
            "p50": round(percentile(samples, 0.50), 3),
            "p90": round(percentile(samples, 0.90), 3),
            "p99": round(percentile(samples, 0.99), 3),
            "p999": round(percentile(samples, 0.999), 3),
            "max": round(samples[-1], 3) if samples else 0.0,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target_rate": round(self.target_rate, 1),
            "achieved_rate": round(self.achieved_rate, 1),
            "ok_rate": round(self.ok_rate, 1),
            "wall_s": round(self.wall_s, 3),
            "scheduled": self.scheduled,
            "completed": self.completed,
            "ok": self.ok,
            "rejected": self.rejected,
            "errors": self.errors,
            "reconnects": self.reconnects,
            "rows": self.rows,
            "latency_ms": self.quantiles_ms(),
            "error_samples": self.error_samples[:5],
        }


class _Client:
    """One keep-alive connection working its own arrival schedule."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str,
        queries: Sequence[str],
        page_rows: Optional[int],
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.queries = queries
        self.page_rows = page_rows
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def _close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
        self._reader = self._writer = None

    async def run(
        self,
        report: LoadReport,
        rate: float,
        deadline: float,
        lock: asyncio.Lock,
    ) -> None:
        loop = asyncio.get_running_loop()
        interval = 1.0 / rate
        epoch = loop.time()
        index = 0
        while True:
            due = epoch + index * interval
            if due >= deadline:
                break
            now = loop.time()
            if due > now:
                await asyncio.sleep(due - now)
            async with lock:
                report.scheduled += 1
            body = api.QueryRequest(
                text=self.queries[index % len(self.queries)],
                client_id=self.client_id,
                page_rows=self.page_rows,
            ).to_json().encode("utf-8")
            index += 1
            try:
                if self._writer is None:
                    await self._connect()
                    report.reconnects += 1
                assert self._writer is not None and self._reader is not None
                self._writer.write(
                    request_bytes(
                        "POST",
                        "/v1/query",
                        f"{self.host}:{self.port}",
                        body,
                    )
                )
                await self._writer.drain()
                response = await read_response(self._reader)
            except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                await self._close()
                async with lock:
                    report.completed += 1
                    report.errors += 1
                    if len(report.error_samples) < 16:
                        report.error_samples.append(
                            f"transport: {type(exc).__name__}: {exc}"
                        )
                continue
            # CO-free: latency runs from the *scheduled* arrival, so time
            # spent queued behind this connection counts against the server.
            latency_ms = (loop.time() - due) * 1000.0
            async with lock:
                report.completed += 1
                if response.status == 200:
                    report.ok += 1
                    report.latencies_ms.append(latency_ms)
                    report.rows += _count_rows(response.body)
                elif response.status == 429:
                    report.rejected += 1
                    report.rejected_latencies_ms.append(latency_ms)
                else:
                    report.errors += 1
                    if len(report.error_samples) < 16:
                        report.error_samples.append(
                            f"http {response.status}: "
                            f"{response.body[:120]!r}"
                        )
        await self._close()


def _count_rows(body: bytes) -> int:
    total = 0
    for line in body.decode("utf-8", errors="replace").splitlines():
        if not line.strip():
            continue
        try:
            message = api.from_json(line)
        except api.SchemaError:
            continue
        if isinstance(message, api.QueryPage) and message.last:
            total += message.total_rows
    return total


async def run_fleet(
    host: str,
    port: int,
    rate: float,
    duration_s: float,
    queries: Sequence[str],
    clients: int = 8,
    page_rows: Optional[int] = None,
) -> LoadReport:
    """Drive ``rate`` req/s at the server for ``duration_s`` seconds.

    The target rate is split evenly across ``clients`` keep-alive
    connections (each holding its own open-loop schedule); the combined
    report carries CO-free latency percentiles and the 200/429/error
    breakdown.
    """
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if not queries:
        raise ValueError("queries must be non-empty")
    loop = asyncio.get_running_loop()
    report = LoadReport(target_rate=rate, wall_s=duration_s)
    lock = asyncio.Lock()
    deadline = loop.time() + duration_s
    started = time.perf_counter()
    fleet = [
        _Client(host, port, f"load-{i}", queries, page_rows)
        for i in range(clients)
    ]
    await asyncio.gather(
        *(client.run(report, rate / clients, deadline, lock) for client in fleet)
    )
    report.wall_s = time.perf_counter() - started
    return report


def run_fleet_sync(*args: Any, **kwargs: Any) -> LoadReport:
    """:func:`run_fleet` from synchronous code (benchmarks, tests)."""
    return asyncio.run(run_fleet(*args, **kwargs))


class AlertListener:
    """A WebSocket client collecting pushed alerts on its own thread.

    Subscribes to ``query`` on construction-start and appends every
    :class:`~repro.api.AlertMessage` to :attr:`alerts`; used by the
    bench/tests to assert zero alert loss under concurrent HTTP load.
    """

    def __init__(
        self,
        host: str,
        port: int,
        query: str,
        name: str = "load-watch",
        window_s: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.query = query
        self.name = name
        self.window_s = window_s
        self.alerts: List[api.AlertMessage] = []
        self.ack: Optional[api.SubscribeAck] = None
        self.error: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._done: Optional[asyncio.Future] = None

    def start(self) -> "AlertListener":
        loop = asyncio.new_event_loop()
        self._loop = loop

        def runner() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self._run())
            loop.close()

        self._thread = threading.Thread(
            target=runner, name="alert-listener", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("alert listener failed to subscribe in time")
        if self.error is not None:
            raise RuntimeError(f"alert listener: {self.error}")
        return self

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        self._done = loop.create_future()
        try:
            ws = await websocket.connect(self.host, self.port)
            await ws.send_text(
                api.SubscribeRequest(
                    query=self.query, name=self.name, window_s=self.window_s
                ).to_json()
            )
            text = await ws.recv_text()
            if text is None:
                raise RuntimeError("socket closed during subscribe")
            first = api.from_json(text)
            if isinstance(first, api.ErrorEnvelope):
                raise RuntimeError(f"{first.code}: {first.message}")
            assert isinstance(first, api.SubscribeAck)
            self.ack = first
        except Exception as exc:
            self.error = f"{type(exc).__name__}: {exc}"
            self._ready.set()
            return
        self._ready.set()
        receiver = asyncio.ensure_future(self._receive(ws))
        await self._done
        receiver.cancel()
        try:
            await receiver
        except asyncio.CancelledError:
            pass
        await ws.close()

    async def _receive(self, ws: websocket.WebSocket) -> None:
        while True:
            text = await ws.recv_text()
            if text is None:
                return
            message = api.from_json(text)
            if isinstance(message, api.AlertMessage):
                self.alerts.append(message)

    def stop(self, timeout: float = 10.0) -> List[api.AlertMessage]:
        """Close the socket and return the collected alerts."""
        if self._loop is not None and self._done is not None:
            def finish() -> None:
                if self._done is not None and not self._done.done():
                    self._done.set_result(None)

            self._loop.call_soon_threadsafe(finish)
        if self._thread is not None:
            self._thread.join(timeout)
        return self.alerts
