"""Alert replay: score standing-query detection against ground truth.

The continuous query engine (:mod:`repro.service.continuous`) turns the
batch investigation corpus inside out — the query stands, the stream
moves.  This driver measures how well that works end to end: it registers
detection queries for the paper's APT case study
(:func:`repro.workload.attacks.inject_apt_case_study`), replays a day of
background enterprise noise with the attack injected on top of it through
a live :class:`~repro.service.stream.StreamSession`, and scores

* **detection** — for every watch query, the first alert whose matched
  events reference all of the step's ground-truth entities (a step with
  no such alert is *missed*);
* **latency** — the commit-to-alert wall latency of every alert (the
  stream session stamps each commit's entry time; the engine stamps each
  alert at emission), reported as p50/p99.

``benchmarks/bench_continuous.py`` gates its floors on this driver; the
tests assert zero missed detections on the default workload.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.model.time import DAY
from repro.service.continuous import Alert
from repro.workload.attacks import inject_apt_case_study
from repro.workload.generator import BackgroundGenerator, GeneratorConfig
from repro.workload.topology import (
    ATTACKER_IP,
    BASE_DAY,
    HOSTS,
    SIMULATION_DAYS,
)


@dataclass(frozen=True)
class WatchQuery:
    """One standing detection query plus its ground-truth extractor."""

    name: str
    step: str  # ground-truth step key in the APT truth dict
    text: str
    truth_entities: Callable[[Dict[str, object]], Set[int]]


WATCH_QUERIES: Tuple[WatchQuery, ...] = (
    # c2: the phishing macro host drops the payload and launches it — a
    # two-pattern join riding the delta evaluation path.
    WatchQuery(
        name="payload-drop",
        step="c2",
        text="""
            proc p1["%excel%"] write file f1["%payload.exe"] as evt1
            proc p1 start proc p2["%payload%"] as evt2
            with evt1 before evt2
            return p1, f1, p2
        """,
        truth_entities=lambda truth: {
            truth["c2"]["excel"].id,  # type: ignore[index]
            truth["c2"]["payload_file"].id,  # type: ignore[index]
            truth["c2"]["payload"].id,  # type: ignore[index]
        },
    ),
    # c3: credential dumping — gsecdump reads the SAM hive.
    WatchQuery(
        name="credential-dump",
        step="c3",
        text="""
            proc p1["gsecdump.exe"] read file f1["%SAM"] as evt1
            return p1, f1
        """,
        truth_entities=lambda truth: {
            truth["c3"]["gsecdump"].id,  # type: ignore[index]
            truth["c3"]["sam"].id,  # type: ignore[index]
        },
    ),
    # c5: exfiltration — the dropped implant writes to the attacker address.
    WatchQuery(
        name="exfiltration",
        step="c5",
        text=f"""
            proc p1["sbblv.exe"] write ip i1[dstip = "{ATTACKER_IP}"] as evt1
            return p1, i1
        """,
        truth_entities=lambda truth: {
            truth["c5"]["sbblv"].id,  # type: ignore[index]
            truth["c5"]["exfil_conn"].id,  # type: ignore[index]
        },
    ),
)


@dataclass(frozen=True)
class Detection:
    """The first alert that covered a step's ground-truth entities."""

    query: str
    step: str
    alert: Alert


@dataclass
class AlertScore:
    """Outcome of one replay run."""

    events: int
    batches: int
    wall_s: float
    alerts: int
    detections: Dict[str, Detection]
    missed: Tuple[str, ...]
    latencies_ms: List[float]

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile_ms(self, pct: float) -> Optional[float]:
        """Nearest-rank percentile over the commit-to-alert latencies."""
        if not self.latencies_ms:
            return None
        ordered = sorted(self.latencies_ms)
        rank = max(0, min(len(ordered) - 1, int(round(pct * len(ordered))) - 1))
        return ordered[rank]

    @property
    def p50_ms(self) -> Optional[float]:
        return self.latency_percentile_ms(0.50)

    @property
    def p99_ms(self) -> Optional[float]:
        return self.latency_percentile_ms(0.99)

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "batches": self.batches,
            "wall_s": round(self.wall_s, 3),
            "events_per_s": round(self.events_per_s),
            "alerts": self.alerts,
            "detections": {
                name: {
                    "step": d.step,
                    "key": list(d.alert.key),
                    "latency_ms": (
                        round(d.alert.latency_s * 1000, 3)
                        if d.alert.latency_s is not None
                        else None
                    ),
                }
                for name, d in self.detections.items()
            },
            "missed": list(self.missed),
            "latency_p50_ms": self.p50_ms,
            "latency_p99_ms": self.p99_ms,
        }


class _PacedSession:
    """Session proxy pacing ``emit`` to a target events/second rate."""

    def __init__(self, session, rate: float) -> None:
        self._session = session
        self._rate = rate
        self._started = time.monotonic()
        self.count = 0

    def __getattr__(self, name):
        return getattr(self._session, name)

    def emit(self, *args, **kwargs):
        if self._rate > 0:
            due = self._started + self.count / self._rate
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        event = self._session.emit(*args, **kwargs)
        self.count += 1
        return event


class AlertReplay:
    """Replays background noise + the APT through standing queries."""

    def __init__(
        self,
        system,
        queries: Sequence[WatchQuery] = WATCH_QUERIES,
        day: Optional[float] = None,
        rate: float = 0.0,
        events_per_host_day: int = 120,
        seed: int = 20170117,
        hosts=HOSTS,
        batch_size: Optional[int] = None,
        window_s: float = DAY,
    ) -> None:
        """``rate`` paces emissions in events/second (0 = unthrottled);
        ``day`` defaults to the first day after the pre-loaded simulation
        window; ``window_s`` is the standing queries' sliding horizon —
        the default of one day keeps a whole attack day joinable.
        """
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.system = system
        self.queries = tuple(queries)
        self.day = (
            day if day is not None else BASE_DAY + SIMULATION_DAYS * DAY
        )
        self.rate = rate
        self.events_per_host_day = events_per_host_day
        self.seed = seed
        self.hosts = hosts
        self.batch_size = batch_size
        self.window_s = window_s

    def run(self) -> AlertScore:
        """Stream one day (noise + attack); returns the detection score."""
        alerts: List[Alert] = []
        collect = _collector(alerts, threading.Lock())
        subs = [
            self.system.subscribe(
                query.text,
                callback=collect,
                window_s=self.window_s,
                name=query.name,
            )
            for query in self.queries
        ]

        session = self.system.stream(batch_size=self.batch_size)
        feed = _PacedSession(session, self.rate) if self.rate else session
        generator = BackgroundGenerator(
            feed,
            GeneratorConfig(
                seed=self.seed,
                hosts=self.hosts,
                events_per_host_day=self.events_per_host_day,
            ),
        )
        batches_before = session.batches_committed
        events_before = session.appended
        started = time.monotonic()
        try:
            generator.run_day(self.day)
            truth = inject_apt_case_study(feed, day_start=self.day)
        finally:
            session.commit()
        wall = time.monotonic() - started

        detections: Dict[str, Detection] = {}
        for query in self.queries:
            expected = query.truth_entities(truth)
            for alert in alerts:
                if alert.query != query.name:
                    continue
                touched = set()
                for event in alert.events:
                    touched.add(event.subject_id)
                    touched.add(event.object_id)
                if expected <= touched:
                    detections[query.name] = Detection(
                        query=query.name, step=query.step, alert=alert
                    )
                    break
        missed = tuple(
            query.name
            for query in self.queries
            if query.name not in detections
        )
        latencies = [
            alert.latency_s * 1000
            for alert in alerts
            if alert.latency_s is not None
        ]
        for sub in subs:
            self.system.unsubscribe(sub)
        return AlertScore(
            events=session.appended - events_before,
            batches=session.batches_committed - batches_before,
            wall_s=wall,
            alerts=len(alerts),
            detections=detections,
            missed=missed,
            latencies_ms=latencies,
        )


def _collector(alerts: List[Alert], lock: threading.Lock):
    def collect(alert: Alert) -> None:
        with lock:
            alerts.append(alert)

    return collect
