"""Append-only event table: the unit of physical storage.

One :class:`EventTable` backs one partition of the AIQL-optimized store, the
single monolithic heap of the flat (PostgreSQL-like) store, and one segment
of the MPP store.  Rows live in a typed :class:`~repro.storage.blocks.
ColumnBlock` (ISSUE 6) — ``array``-backed id/time/seq columns plus
dictionary-encoded agent/op/object-type codes — in arrival order, with

* a sorted start-time index for temporal range scans on out-of-order data
  (time-ordered blocks answer window probes by bisecting the raw time
  column directly),
* subject-id and object-id postings lists (the relational analogue of the
  foreign-key indexes on the events table),
* per-operation postings lists.

:class:`SystemEvent` objects are a lazily materialized view over the block:
scans narrow on columns and only survivors (or explicit row accesses)
construct events.  The table itself is semantics-agnostic; domain
optimizations (partition pruning, spatial/temporal parallelism) live above
it.

Visibility model (single writer, many readers): rows and index postings are
staged first and *published* by a single monotone ``_visible`` bump, so a
reader never observes part of a batch.  :meth:`append` publishes per event
(the legacy exclusive write path); :meth:`append_batch` stages a whole
batch and publishes it with one bump, which is what makes a streaming
commit atomic with respect to concurrent scans of this partition.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.model.entities import Entity, EntityType
from repro.model.events import Operation, SystemEvent
from repro.storage.blocks import ColumnBlock, Positions, Selection
from repro.storage.filters import EventFilter, top_level_equalities
from repro.storage.index import EntityAttributeIndex, SortedTimeIndex
from repro.storage.kernels import (
    ScanKernel,
    columnar_enabled,
    kernel_for,
    kernels_enabled,
)


class EventTable:
    """Columnar in-memory event heap with secondary indexes."""

    def __init__(self, entity_lookup: Callable[[int], Entity]) -> None:
        self._entity_lookup = entity_lookup
        self._block = ColumnBlock()
        self._time_index = SortedTimeIndex()
        self._by_subject: Dict[int, List[int]] = defaultdict(list)
        self._by_object: Dict[int, List[int]] = defaultdict(list)
        self._by_operation: Dict[Operation, List[int]] = defaultdict(list)
        # Readers only see positions < _visible; the writer stages rows and
        # index entries first, then publishes them with one assignment (an
        # atomic int store under the GIL), so a batch is all-or-nothing.
        self._visible = 0

    @property
    def block(self) -> ColumnBlock:
        """The typed column block backing this table (stable identity)."""
        return self._block

    @property
    def min_time(self) -> Optional[float]:
        return self._block.min_time

    @property
    def max_time(self) -> Optional[float]:
        return self._block.max_time

    def _stage(self, event: SystemEvent) -> None:
        position = self._block.append(event)
        self._time_index.add(event.start_time, position)
        self._by_subject[event.subject_id].append(position)
        self._by_object[event.object_id].append(position)
        self._by_operation[event.operation].append(position)

    def append(self, event: SystemEvent) -> None:
        self._stage(event)
        self._visible = len(self._block)

    def append_batch(self, events: Sequence[SystemEvent]) -> None:
        """Stage ``events`` and publish them atomically (one visibility bump)."""
        for event in events:
            self._stage(event)
        self._visible = len(self._block)

    def __len__(self) -> int:
        return self._visible

    def __iter__(self) -> Iterator[SystemEvent]:
        return iter(self._block.events(self._visible))

    def events_at(self, positions: Iterable[int]) -> List[SystemEvent]:
        return self._block.events_at(positions)

    def _candidate_positions(
        self,
        flt: EventFilter,
        entity_index: Optional[EntityAttributeIndex],
        visible: Optional[int] = None,
    ) -> Positions:
        """Pick the cheapest access path for a filter.

        Preference order: explicit id sets from the scheduler, entity
        attribute indexes, the sorted time column (bisected directly while
        the block is time-ordered, else the time index), then a full scan.
        Positions at or beyond ``visible`` (defaults to the current
        publication point) are staged-but-uncommitted batch rows and are
        never returned.
        """
        if visible is None:
            visible = self._visible
        block = self._block
        position_sets: List[Set[int]] = []

        def positions_for_ids(
            ids: FrozenSet[int], postings: Dict[int, List[int]]
        ) -> Set[int]:
            out: Set[int] = set()
            for entity_id in ids:
                out.update(postings.get(entity_id, ()))
            return out

        if flt.subject_ids is not None:
            position_sets.append(positions_for_ids(flt.subject_ids, self._by_subject))
        if flt.object_ids is not None:
            position_sets.append(positions_for_ids(flt.object_ids, self._by_object))

        if entity_index is not None:
            subj_cands = entity_index.candidates(
                EntityType.PROCESS, top_level_equalities(flt.subject_pred)
            )
            if subj_cands is not None:
                position_sets.append(
                    positions_for_ids(subj_cands, self._by_subject)
                )
            if flt.object_type is not None:
                obj_cands = entity_index.candidates(
                    flt.object_type, top_level_equalities(flt.object_pred)
                )
                if obj_cands is not None:
                    position_sets.append(
                        positions_for_ids(obj_cands, self._by_object)
                    )

        if position_sets:
            candidates = set.intersection(*position_sets)
            candidates = {p for p in candidates if p < visible}
            if candidates and self._window_cuts(flt.window):
                # Constrained/cached scans narrow by id sets that may span
                # the whole partition lifetime; dropping out-of-window
                # positions here (O(|candidates|), cheaper than walking
                # the time index) keeps the scan from resolving entities
                # and evaluating predicates for stale positions.
                window = flt.window
                if block.time_sorted:
                    # Bisect the sorted time column once: the in-window
                    # region is a contiguous position range, so membership
                    # is two integer compares per candidate — no per-
                    # candidate timestamp reads at all.
                    lo, hi = block.window_bounds(
                        window.start, window.end, visible
                    )
                    candidates = {p for p in candidates if lo <= p < hi}
                else:
                    contains = window.contains
                    t0 = block.t0
                    candidates = {p for p in candidates if contains(t0[p])}
            return sorted(candidates)

        if flt.window.start is not None or flt.window.end is not None:
            if block.time_sorted:
                lo, hi = block.window_bounds(
                    flt.window.start, flt.window.end, visible
                )
                return range(lo, hi)
            positions = self._time_index.range(flt.window.start, flt.window.end)
            return [p for p in positions if p < visible]

        return range(visible)

    def _window_cuts(self, window) -> bool:
        """True when ``window`` excludes part of this table's time range."""
        min_time = self._block.min_time
        if min_time is None:
            return False
        if window.start is not None and window.start > min_time:
            return True
        # Window ends are exclusive: an end beyond max_time excludes nothing.
        return window.end is not None and window.end <= self._block.max_time

    def scan_select(
        self,
        flt: EventFilter,
        entity_index: Optional[EntityAttributeIndex] = None,
        kernel: Optional[ScanKernel] = None,
    ) -> Selection:
        """Survivor positions for ``flt``, in (start_time, event_id) order.

        The block-native scan: candidates narrow through the batch kernel
        (``ScanKernel.select``) without materializing a single row.  The
        per-event compiled closure remains behind ``use_columnar(False)``
        and the interpreted ``flt.matches`` path behind ``use_kernels
        (False)`` — both as differential oracles.
        """
        lookup = self._entity_lookup
        visible = self._visible  # one snapshot: the whole scan sees one prefix
        block = self._block
        if kernel is None and kernels_enabled():
            kernel = kernel_for(flt)
        if kernel is not None and kernel.always_false:
            return Selection(block, [])
        candidates = self._candidate_positions(flt, entity_index, visible)
        matched: Positions
        if kernel is not None:
            if columnar_enabled():
                matched = kernel.select(block, candidates, lookup)
            else:
                test = kernel.test
                event_at = block.event_at
                matched = [
                    p for p in candidates if test(event_at(p), lookup)
                ]
        else:
            matches = flt.matches
            event_at = block.event_at
            matched = []
            for position in candidates:
                event = event_at(position)
                subject = lookup(event.subject_id)
                obj = lookup(event.object_id)
                if matches(event, subject, obj):
                    matched.append(position)
        return Selection(block, block.order_positions(matched))

    def scan(
        self,
        flt: EventFilter,
        entity_index: Optional[EntityAttributeIndex] = None,
        kernel: Optional[ScanKernel] = None,
    ) -> List[SystemEvent]:
        """Return all events matching ``flt``, sorted by (start_time, event_id).

        Matching runs through a compiled scan kernel (one specialized
        batch/closure pair per filter, memoized on the filter fingerprint);
        stores scanning many partitions compile once and pass ``kernel``
        down.  This is :meth:`scan_select` plus row materialization.
        """
        return self.scan_select(flt, entity_index, kernel).events()

    def full_scan(self, flt: EventFilter) -> List[SystemEvent]:
        """Index-free scan; the oracle for partition-pruning soundness tests."""
        lookup = self._entity_lookup
        matched = [
            event
            for event in self._block.events(self._visible)
            if flt.matches(event, lookup(event.subject_id), lookup(event.object_id))
        ]
        matched.sort(key=lambda e: (e.start_time, e.event_id))
        return matched
