"""The AIQL-optimized event store (paper Sec. 3.2).

:class:`EventStore` is the domain-optimized storage backend: events are
partitioned by (day, agent-group), entities are indexed on the frequently
queried attributes, and scans prune partitions using the spatial/temporal
constraints of the data query.  Scans over many partitions may run in
parallel (the storage-level half of the paper's temporal & spatial
parallelization; the query-level half lives in :mod:`repro.engine.parallel`).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterator, List, Optional, Tuple

from repro.model.entities import Entity, EntityRegistry, EntityType
from repro.model.events import SystemEvent
from repro.storage.filters import EventFilter, top_level_equalities
from repro.storage.index import DEFAULT_INDEXED_ATTRIBUTES, EntityAttributeIndex
from repro.storage.partition import PartitionKey, PartitionScheme
from repro.storage.table import EventTable


def narrow_with_index(flt: EventFilter, index: EntityAttributeIndex) -> EventFilter:
    """Fold index-servable entity predicates into id-set narrowings.

    Resolving candidates once per scan (instead of once per partition or
    segment) keeps index probing off the per-table hot path; tables then
    serve the id sets straight from their postings lists.
    """
    subject = index.candidates(
        EntityType.PROCESS, top_level_equalities(flt.subject_pred)
    )
    if subject is not None:
        flt = flt.narrowed(subject_ids=subject)
    if flt.object_type is not None:
        obj = index.candidates(
            flt.object_type, top_level_equalities(flt.object_pred)
        )
        if obj is not None:
            flt = flt.narrowed(object_ids=obj)
    return flt


class EventStore:
    """Partitioned, indexed storage for system monitoring data."""

    def __init__(
        self,
        registry: Optional[EntityRegistry] = None,
        scheme: Optional[PartitionScheme] = None,
        indexed_attributes=None,
        max_workers: int = 4,
    ) -> None:
        self.registry = registry if registry is not None else EntityRegistry()
        self.scheme = scheme or PartitionScheme()
        self.entity_index = EntityAttributeIndex(
            indexed_attributes or DEFAULT_INDEXED_ATTRIBUTES
        )
        self._partitions: Dict[PartitionKey, EventTable] = {}
        self._indexed_entities: set[int] = set()
        self._event_count = 0
        self._max_workers = max_workers

    # -- ingestion ---------------------------------------------------------

    def register_entity(self, entity: Entity) -> None:
        """Index a (deduplicated) entity; idempotent per entity id."""
        if entity.id in self._indexed_entities:
            return
        self._indexed_entities.add(entity.id)
        self.entity_index.add(entity)

    def add_event(self, event: SystemEvent) -> None:
        key = self.scheme.key_for(event.agent_id, event.start_time)
        table = self._partitions.get(key)
        if table is None:
            table = EventTable(self.registry.get)
            self._partitions[key] = table
        table.append(event)
        self._event_count += 1

    # -- queries -----------------------------------------------------------

    def _pruned(self, flt: EventFilter) -> List[EventTable]:
        keys = self.scheme.prune(self._partitions.keys(), flt.agent_ids, flt.window)
        return [self._partitions[key] for key in keys]

    def scan(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> List[SystemEvent]:
        """All events matching ``flt``, sorted by (start_time, event_id).

        ``use_entity_index=False`` disables the attribute hash indexes and
        models engines whose B-tree indexes cannot serve leading-wildcard
        LIKE predicates (stock PostgreSQL/Greenplum seq-scan in that case);
        partition pruning and the time index still apply.
        """
        if use_entity_index:
            flt = narrow_with_index(flt, self.entity_index)
        tables = self._pruned(flt)
        if not tables:
            return []
        if parallel and len(tables) > 1:
            with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
                chunks = list(
                    pool.map(lambda t: t.scan(flt, None), tables)
                )
        else:
            chunks = [table.scan(flt, None) for table in tables]
        merged: List[SystemEvent] = []
        for chunk in chunks:
            merged.extend(chunk)
        merged.sort(key=lambda e: (e.start_time, e.event_id))
        return merged

    def full_scan(self, flt: EventFilter) -> List[SystemEvent]:
        """Index- and pruning-free scan; the soundness oracle for tests."""
        matched: List[SystemEvent] = []
        for table in self._partitions.values():
            matched.extend(table.full_scan(flt))
        matched.sort(key=lambda e: (e.start_time, e.event_id))
        return matched

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._event_count

    def __iter__(self) -> Iterator[SystemEvent]:
        for key in sorted(self._partitions, key=lambda k: (k.day, k.agent_group)):
            yield from self._partitions[key]

    @property
    def partition_keys(self) -> Tuple[PartitionKey, ...]:
        return tuple(
            sorted(self._partitions, key=lambda k: (k.day, k.agent_group))
        )

    def partition_sizes(self) -> Dict[PartitionKey, int]:
        return {key: len(table) for key, table in self._partitions.items()}

    def stats(self) -> Dict[str, object]:
        sizes = [len(t) for t in self._partitions.values()]
        return {
            "events": self._event_count,
            "entities": len(self.registry),
            "partitions": len(self._partitions),
            "largest_partition": max(sizes) if sizes else 0,
            "smallest_partition": min(sizes) if sizes else 0,
        }
