"""The AIQL-optimized event store (paper Sec. 3.2).

:class:`EventStore` is the domain-optimized storage backend: events are
partitioned by (day, agent-group), entities are indexed on the frequently
queried attributes, and scans prune partitions using the spatial/temporal
constraints of the data query.  Scans over many partitions may run in
parallel (the storage-level half of the paper's temporal & spatial
parallelization; the query-level half lives in :mod:`repro.engine.parallel`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.model.entities import Entity, EntityRegistry, EntityType
from repro.model.events import SystemEvent
from repro.service.cache import CACHEABLE_ID_SET_LIMIT, ScanCache, cacheable_filter
from repro.service.pool import SharedExecutor, get_shared_executor
from repro.storage.blocks import BlockScanResult, Selection
from repro.storage.filters import (
    EventFilter,
    filter_fingerprint,
    top_level_equalities,
)
from repro.obs.metrics import REGISTRY
from repro.obs.trace import active_trace
from repro.storage.index import DEFAULT_INDEXED_ATTRIBUTES, EntityAttributeIndex
from repro.storage.kernels import kernel_for, kernels_enabled
from repro.storage.partition import PartitionKey, PartitionScheme
from repro.storage.table import EventTable

# Hot-scan metrics: one increment batch per scan (never per row), keyed
# per call site below so the disabled cost is one flag check in
# scan_columns.
_M_SCANS = REGISTRY.counter("aiql_scan_total", "Hot-store scans executed")
_M_ROWS_SCANNED = REGISTRY.counter(
    "aiql_scan_rows_scanned_total",
    "Rows resident in the partitions each hot scan examined",
)
_M_ROWS_SELECTED = REGISTRY.counter(
    "aiql_scan_rows_selected_total", "Rows selected by hot scans"
)
_M_PARTS_SCANNED = REGISTRY.counter(
    "aiql_scan_partitions_scanned_total",
    "Partitions surviving pruning and scanned",
)
_M_PARTS_PRUNED = REGISTRY.counter(
    "aiql_scan_partitions_pruned_total",
    "Partitions eliminated by (day, agent-group) pruning",
)
_M_CACHE_HITS = REGISTRY.counter(
    "aiql_scan_cache_hits_total",
    "Partition selections served from the scan cache",
)
_M_CACHE_MISSES = REGISTRY.counter(
    "aiql_scan_cache_misses_total",
    "Partition selections computed (scan-cache miss or cache bypass)",
)


def narrow_with_index(flt: EventFilter, index: EntityAttributeIndex) -> EventFilter:
    """Fold index-servable entity predicates into id-set narrowings.

    Resolving candidates once per scan (instead of once per partition or
    segment) keeps index probing off the per-table hot path; tables then
    serve the id sets straight from their postings lists.
    """
    subject = index.candidates(
        EntityType.PROCESS, top_level_equalities(flt.subject_pred)
    )
    if subject is not None:
        flt = flt.narrowed(subject_ids=subject)
    if flt.object_type is not None:
        obj = index.candidates(
            flt.object_type, top_level_equalities(flt.object_pred)
        )
        if obj is not None:
            flt = flt.narrowed(object_ids=obj)
    return flt


class EventStore:
    """Partitioned, indexed storage for system monitoring data.

    Concurrency model: single writer, many readers.  One ingest thread may
    append while any number of query-service workers scan; index lookups
    are locked, dict iterations snapshot, and every candidate event is
    re-checked against the full filter, so a racing append is either
    visible or not-yet-visible but never corrupts a result.

    Batch commits are atomic across partitions: each partition publishes
    its sub-batch with one visibility bump, and readers additionally filter
    by the store's committed-event watermark (``_committed``), which is
    raised only after every partition of the batch has published.  A scan
    racing a multi-partition commit therefore sees the whole batch or none
    of it — never one partition's share without another's.
    """

    def __init__(
        self,
        registry: Optional[EntityRegistry] = None,
        scheme: Optional[PartitionScheme] = None,
        indexed_attributes=None,
        executor: Optional[SharedExecutor] = None,
        scan_cache: Optional[ScanCache] = None,
    ) -> None:
        self.registry = registry if registry is not None else EntityRegistry()
        self.scheme = scheme or PartitionScheme()
        self.entity_index = EntityAttributeIndex(
            indexed_attributes or DEFAULT_INDEXED_ATTRIBUTES
        )
        self._partitions: Dict[PartitionKey, EventTable] = {}
        self._indexed_entities: set[int] = set()
        self._event_count = 0
        # Highest event id whose commit has fully published (all partitions
        # bumped).  Readers drop rows above their snapshot of this, which is
        # what makes a multi-partition batch commit atomic to scans.
        self._committed = 0
        # Parallel scans run on the process-wide shared pool (never a
        # per-call one); the scan cache is optional and owner-provided so
        # several stores can share or disable it.
        self._executor = executor
        self.scan_cache = scan_cache

    # -- ingestion ---------------------------------------------------------

    def register_entity(self, entity: Entity) -> None:
        """Index a (deduplicated) entity; idempotent per entity id."""
        if entity.id in self._indexed_entities:
            return
        self._indexed_entities.add(entity.id)
        self.entity_index.add(entity)

    def add_event(self, event: SystemEvent) -> None:
        key = self.scheme.key_for(event.agent_id, event.start_time)
        table = self._partitions.get(key)
        if table is None:
            table = EventTable(self.registry.get)
            self._partitions[key] = table
        table.append(event)
        self._event_count += 1
        if self.scan_cache is not None:
            self.scan_cache.invalidate(key)
        self._committed = max(self._committed, event.event_id)

    def add_batch(self, events: Sequence[SystemEvent]) -> Tuple[PartitionKey, ...]:
        """Append a committed batch; returns the partitions it touched.

        The incremental write path of the streaming ingestion subsystem:
        events are grouped per partition, each partition publishes its rows
        and index postings with one visibility bump, and the scan cache is
        invalidated once per *touched* partition — cached scans of
        partitions the batch did not touch stay warm, unlike the per-event
        exclusive path which pays one invalidation per event.  The
        committed watermark is raised last (after every partition published
        and the touched cache entries were dropped), so a reader either
        filters the whole batch out or — once the watermark moves — finds
        every partition's share already published: no torn batches, and a
        post-commit query never gets a pre-commit cache entry.
        """
        by_key: Dict[PartitionKey, List[SystemEvent]] = {}
        for event in events:
            key = self.scheme.key_for(event.agent_id, event.start_time)
            by_key.setdefault(key, []).append(event)
        for key, chunk in by_key.items():
            table = self._partitions.get(key)
            if table is None:
                table = EventTable(self.registry.get)
                self._partitions[key] = table
            table.append_batch(chunk)
        if self.scan_cache is not None:
            for key in by_key:
                self.scan_cache.invalidate(key)
        self._event_count += len(events)
        if events:
            self._committed = max(
                self._committed, max(e.event_id for e in events)
            )
        return tuple(by_key)

    def remove_events(self, events: Sequence[SystemEvent]) -> int:
        """Remove committed events (the cold-migration hand-off).

        Affected partitions are rebuilt without the removed rows and
        swapped in atomically (readers mid-scan keep the old table, which
        is still correct — the tiered scan path deduplicates by event id
        while both copies are reachable); emptied partitions are dropped.
        Must run on the single writer, serialized with appends.
        """
        by_key: Dict[PartitionKey, set] = {}
        for event in events:
            key = self.scheme.key_for(event.agent_id, event.start_time)
            by_key.setdefault(key, set()).add(event.event_id)
        removed = 0
        for key, ids in by_key.items():
            table = self._partitions.get(key)
            if table is None:
                continue
            keep = [e for e in table if e.event_id not in ids]
            removed += len(table) - len(keep)
            if keep:
                fresh = EventTable(self.registry.get)
                fresh.append_batch(keep)
                self._partitions[key] = fresh
            else:
                self._partitions.pop(key, None)
            if self.scan_cache is not None:
                self.scan_cache.invalidate(key)
        self._event_count -= removed
        return removed

    def time_range(self) -> Tuple[Optional[float], Optional[float]]:
        """(min, max) event start time over the hot partitions."""
        tables = list(self._partitions.values())
        mins = [t.min_time for t in tables if t.min_time is not None]
        maxs = [t.max_time for t in tables if t.max_time is not None]
        return (min(mins) if mins else None, max(maxs) if maxs else None)

    # -- queries -----------------------------------------------------------

    @property
    def executor(self) -> SharedExecutor:
        if self._executor is None:
            self._executor = get_shared_executor()
        return self._executor

    def _pruned_keys(self, flt: EventFilter) -> List[PartitionKey]:
        # list() snapshots atomically; pruning must not iterate the live
        # dict while a single-writer ingest inserts a new partition.
        return self.scheme.prune(list(self._partitions), flt.agent_ids, flt.window)

    def _pruned(self, flt: EventFilter) -> List[EventTable]:
        """Tables surviving partition pruning (also a benchmark probe)."""
        tables = (self._partitions.get(key) for key in self._pruned_keys(flt))
        return [table for table in tables if table is not None]

    def estimated_events(self, flt: EventFilter) -> int:
        """Upper bound on matching events from partition pruning alone.

        The hot half of the tiered cost estimate: the scheduler's
        cardinality score model prefers this over ``len(store)`` because a
        spatially/temporally constrained pattern only ever touches its
        surviving partitions.
        """
        return sum(len(table) for table in self._pruned(flt))

    # Skip the cache for filters carrying giant scheduler-narrowed id sets
    # (one-off fingerprints; see service.cache.cacheable_filter).
    CACHEABLE_ID_SET_LIMIT = CACHEABLE_ID_SET_LIMIT

    @classmethod
    def _cacheable(cls, flt: EventFilter) -> bool:
        return cacheable_filter(flt, cls.CACHEABLE_ID_SET_LIMIT)

    def scan_columns(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> BlockScanResult:
        """Survivors of ``flt`` as per-partition selections over the blocks.

        The block-native scan: nothing is materialized here — callers read
        join keys, narrowing values and time bounds straight off the
        columns and only final results become rows (:meth:`scan` is this
        plus materialization).

        ``use_entity_index=False`` disables the attribute hash indexes and
        models engines whose B-tree indexes cannot serve leading-wildcard
        LIKE predicates (stock PostgreSQL/Greenplum seq-scan in that case);
        partition pruning and the time index still apply.

        Per-partition selections are served from :attr:`scan_cache` when
        one is attached; entries are keyed by the *narrowed* filter plus
        the partition block's generation (a rebuilt partition gets a fresh
        block, so its old selections can never be replayed), and the
        committed-watermark cut is applied per scan, never cached.
        """
        # Cacheability is judged on the incoming filter: id sets already
        # present were injected by the scheduler from join results (one-off
        # keys), while the index narrowing below derives from the stable
        # entity population and only shapes the cache key.
        committed = self._committed  # snapshot before touching any partition
        cache = self.scan_cache
        cacheable = cache is not None and self._cacheable(flt)
        obs = REGISTRY.enabled
        trace = active_trace()
        observing = obs or trace is not None
        considered = len(self._partitions) if observing else 0
        if use_entity_index:
            flt = narrow_with_index(flt, self.entity_index)
        # Compile the filter once for the whole scan; every surviving
        # partition shares the kernel.  A constant-false filter (empty
        # window, empty narrowed id set) skips pruning and scanning alike.
        kernel = kernel_for(flt) if kernels_enabled() else None
        if kernel is not None and kernel.always_false:
            if observing:
                self._observe_scan(obs, trace, considered, 0, 0, 0, 0, 0)
            return BlockScanResult(())
        keys = self._pruned_keys(flt)
        if not keys:
            if observing:
                self._observe_scan(obs, trace, considered, 0, 0, 0, 0, 0)
            return BlockScanResult(())
        # Cache accounting for *this* scan: pool workers don't inherit the
        # caller's contextvars, so per-partition outcomes are collected via
        # this thread-safe list and folded into span/metrics on the calling
        # thread after the gather.
        computed: List[None] = []
        # Partition sizes are recorded inside scan_one (same thread-safe
        # list pattern) so the observing path never re-fetches tables.
        sizes: Optional[List[int]] = [] if observing else None
        # .get: a partition may be migrated cold (popped) between pruning
        # and the per-partition scan; its events are then served by the
        # cold tier, so an empty result here is correct, not a lost read.
        if cacheable:
            fingerprint = filter_fingerprint(flt)

            def scan_one(key: PartitionKey) -> Optional[Selection]:
                table = self._partitions.get(key)
                if table is None:
                    return None
                if sizes is not None:
                    sizes.append(len(table))

                def compute() -> Selection:
                    computed.append(None)
                    return table.scan_select(flt, None, kernel)

                return cache.get_or_compute(
                    key,
                    fingerprint,
                    compute,
                    generation=table.block.generation,
                )

        else:

            def scan_one(key: PartitionKey) -> Optional[Selection]:
                table = self._partitions.get(key)
                if table is None:
                    return None
                if sizes is not None:
                    sizes.append(len(table))
                return table.scan_select(flt, None, kernel)

        if parallel and len(keys) > 1:
            selections = self.executor.map_all(scan_one, keys)
        else:
            selections = [scan_one(key) for key in keys]
        # Rows published by a still-committing batch (or cached by a later
        # scan) sit above our committed snapshot; dropping them per scan
        # keeps multi-partition commits atomic to this scan.
        final = [s.committed_only(committed) for s in selections if s is not None]
        if observing:
            scanned = sum(1 for s in selections if s is not None)
            misses = len(computed) if cacheable else scanned
            hits = scanned - misses if cacheable else 0
            rows_scanned = sum(sizes or ())
            rows_selected = sum(len(s) for s in final)
            self._observe_scan(
                obs, trace, considered, scanned,
                rows_scanned, rows_selected, hits, misses,
            )
        return BlockScanResult(final)

    @staticmethod
    def _observe_scan(
        obs: bool,
        trace,
        considered: int,
        scanned: int,
        rows_scanned: int,
        rows_selected: int,
        hits: int,
        misses: int,
    ) -> None:
        """Fold one scan's outcome into metrics and the active span."""
        pruned = max(0, considered - scanned)
        if obs:
            _M_SCANS.inc()
            _M_ROWS_SCANNED.inc(rows_scanned)
            _M_ROWS_SELECTED.inc(rows_selected)
            _M_PARTS_SCANNED.inc(scanned)
            _M_PARTS_PRUNED.inc(pruned)
            if hits:
                _M_CACHE_HITS.inc(hits)
            if misses:
                _M_CACHE_MISSES.inc(misses)
        if trace is not None:
            span = trace.current
            span.add("rows_scanned", rows_scanned)
            span.add("rows_selected", rows_selected)
            span.add("partitions_scanned", scanned)
            span.add("partitions_pruned", pruned)
            span.add("cache_hits", hits)
            span.add("cache_misses", misses)

    def scan(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> List[SystemEvent]:
        """All events matching ``flt``, sorted by (start_time, event_id).

        Materializing wrapper over :meth:`scan_columns` (same semantics,
        row objects built for every survivor).
        """
        return self.scan_columns(flt, parallel, use_entity_index).events()

    def full_scan(self, flt: EventFilter) -> List[SystemEvent]:
        """Index- and pruning-free scan; the soundness oracle for tests."""
        committed = self._committed
        matched: List[SystemEvent] = []
        for table in list(self._partitions.values()):
            matched.extend(
                e for e in table.full_scan(flt) if e.event_id <= committed
            )
        matched.sort(key=lambda e: (e.start_time, e.event_id))
        return matched

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._event_count

    def __iter__(self) -> Iterator[SystemEvent]:
        committed = self._committed
        for key in sorted(list(self._partitions), key=lambda k: (k.day, k.agent_group)):
            for event in self._partitions[key]:
                if event.event_id <= committed:
                    yield event

    @property
    def partition_keys(self) -> Tuple[PartitionKey, ...]:
        return tuple(
            sorted(list(self._partitions), key=lambda k: (k.day, k.agent_group))
        )

    def partition_sizes(self) -> Dict[PartitionKey, int]:
        return {key: len(table) for key, table in list(self._partitions.items())}

    def stats(self) -> Dict[str, object]:
        sizes = [len(t) for t in list(self._partitions.values())]
        return {
            "events": self._event_count,
            "entities": len(self.registry),
            "partitions": len(self._partitions),
            "largest_partition": max(sizes) if sizes else 0,
            "smallest_partition": min(sizes) if sizes else 0,
        }
