"""Attribute indexes for entities and events (paper Sec. 3.2).

The paper builds database indexes "on the attributes that will be queried
frequently, such as executable name of process, name of file, source/
destination IP of network connection".  We provide:

* :class:`HashIndex` — exact-match lookup from attribute value to a set of
  ids; also serves LIKE patterns by scanning its (much smaller) keyspace
  instead of the event table;
* :class:`SortedTimeIndex` — binary-searchable index over event start times
  used for time-window scans within a partition;
* :class:`EntityAttributeIndex` — the registry of per-(entity type,
  attribute) hash indexes used by data queries to resolve candidate entity
  ids before touching events.
"""

from __future__ import annotations

import bisect
import threading
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.model.entities import Entity, EntityType, normalize_attribute
from repro.storage.filters import AttrPredicate, like_to_regex

# Attributes indexed by default, per the paper (+ the Sec. 7 extension
# entity types, indexed on their default attributes).
DEFAULT_INDEXED_ATTRIBUTES: Dict[EntityType, Tuple[str, ...]] = {
    EntityType.FILE: ("name",),
    EntityType.PROCESS: ("exe_name",),
    EntityType.NETWORK: ("src_ip", "dst_ip", "dst_port"),
    EntityType.REGISTRY: ("key",),
    EntityType.PIPE: ("name",),
}


def _norm_key(value: object) -> object:
    return value.lower() if isinstance(value, str) else value


class HashIndex:
    """Value -> set-of-ids index with LIKE support over the keyspace.

    LIKE lookups scan the (deduplicated) keyspace, which is much smaller
    than the event heap; results are memoized until the next insert, so a
    repeated investigation pattern (the common case — Sec. 6.2.1's
    iterative refinement reuses the same entity constraints) hits a warm
    index.

    Lookups and inserts are mutually locked: the concurrent query service
    runs reads on pool workers while an ingest thread registers entities,
    and an unguarded bucket iteration would see the dict resize mid-walk.
    """

    def __init__(self) -> None:
        self._buckets: Dict[object, Set[int]] = defaultdict(set)
        self._like_cache: Dict[str, FrozenSet[int]] = {}
        self._lock = threading.Lock()

    def add(self, value: object, item_id: int) -> None:
        with self._lock:
            self._buckets[_norm_key(value)].add(item_id)
            if self._like_cache:
                self._like_cache.clear()

    def lookup(self, value: object) -> FrozenSet[int]:
        with self._lock:
            return frozenset(self._buckets.get(_norm_key(value), frozenset()))

    def lookup_in(self, values: Iterable[object]) -> FrozenSet[int]:
        result: Set[int] = set()
        with self._lock:
            for value in values:
                result |= self._buckets.get(_norm_key(value), set())
        return frozenset(result)

    def lookup_like(self, pattern: str) -> FrozenSet[int]:
        with self._lock:
            cached = self._like_cache.get(pattern)
            if cached is not None:
                return cached
            regex = like_to_regex(pattern)
            result: Set[int] = set()
            for key, ids in self._buckets.items():
                if isinstance(key, str) and regex.match(key):
                    result |= ids
            frozen = frozenset(result)
            self._like_cache[pattern] = frozen
            return frozen

    def lookup_predicate(self, pred: AttrPredicate) -> Optional[FrozenSet[int]]:
        """Serve a predicate if this index can; ``None`` if unsupported."""
        if pred.op == "in":
            assert isinstance(pred.value, (tuple, list, frozenset, set))
            return self.lookup_in(pred.value)
        if pred.op == "=":
            if pred.is_like:
                return self.lookup_like(str(pred.value))
            return self.lookup(pred.value)
        return None

    def __len__(self) -> int:
        return len(self._buckets)


class EntityAttributeIndex:
    """Per-(entity type, attribute) hash indexes over an entity population."""

    def __init__(
        self,
        indexed: Optional[Dict[EntityType, Tuple[str, ...]]] = None,
    ) -> None:
        self._spec = dict(indexed or DEFAULT_INDEXED_ATTRIBUTES)
        self._indexes: Dict[Tuple[EntityType, str], HashIndex] = {
            (etype, attr): HashIndex()
            for etype, attrs in self._spec.items()
            for attr in attrs
        }
        self._ids_by_type: Dict[EntityType, Set[int]] = defaultdict(set)
        self._ids_lock = threading.Lock()

    def add(self, entity: Entity) -> None:
        etype = entity.entity_type
        with self._ids_lock:
            self._ids_by_type[etype].add(entity.id)
        for attr in self._spec.get(etype, ()):
            self._indexes[(etype, attr)].add(entity.attribute(attr), entity.id)

    def all_ids(self, etype: EntityType) -> FrozenSet[int]:
        with self._ids_lock:
            return frozenset(self._ids_by_type.get(etype, frozenset()))

    def covers(self, etype: EntityType, attr: str) -> bool:
        return (etype, normalize_attribute(etype, attr)) in self._indexes

    def candidates(
        self, etype: EntityType, preds: Iterable[AttrPredicate]
    ) -> Optional[FrozenSet[int]]:
        """Intersect index lookups for the servable predicates.

        Returns ``None`` when no predicate was servable (caller must fall
        back to scanning); otherwise a sound over-approximation of the
        matching entity ids.
        """
        result: Optional[FrozenSet[int]] = None
        for pred in preds:
            attr = normalize_attribute(etype, pred.attr)
            index = self._indexes.get((etype, attr))
            if index is None:
                continue
            served = index.lookup_predicate(
                AttrPredicate(attr=attr, op=pred.op, value=pred.value)
            )
            if served is None:
                continue
            result = served if result is None else (result & served)
        return result


class SortedTimeIndex:
    """Sorted (start_time, position) pairs for range scans in a partition.

    Events arrive in near-sorted order (per-agent sequence numbers increase
    monotonically), so maintenance is an append plus an occasional
    ``insort``; lookups are binary searches.

    Add and range are mutually locked: the out-of-order insert updates the
    two parallel lists in sequence, and a concurrent reader catching them
    misaligned would map positions to the wrong timestamps.
    """

    def __init__(self) -> None:
        self._times: List[float] = []
        self._positions: List[int] = []
        self._lock = threading.Lock()

    def add(self, start_time: float, position: int) -> None:
        with self._lock:
            if not self._times or start_time >= self._times[-1]:
                self._times.append(start_time)
                self._positions.append(position)
                return
            idx = bisect.bisect_right(self._times, start_time)
            self._times.insert(idx, start_time)
            self._positions.insert(idx, position)

    def range(
        self, start: Optional[float], end: Optional[float]
    ) -> List[int]:
        """Positions of events with ``start <= t < end`` (None = unbounded)."""
        with self._lock:
            lo = 0 if start is None else bisect.bisect_left(self._times, start)
            hi = (
                len(self._times)
                if end is None
                else bisect.bisect_left(self._times, end)
            )
            return self._positions[lo:hi]

    def __len__(self) -> int:
        return len(self._times)
