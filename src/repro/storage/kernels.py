"""Compiled scan kernels: one-shot ``EventFilter`` -> closure compilation.

Every scan in the system funnels per-candidate events through
:meth:`EventFilter.matches`, which re-interprets up to nine constraint
branches plus a recursive predicate tree per event, re-coerces literal
types per comparison and (before memoization) recompiled LIKE regexes per
row.  On the paper's workload — interactive investigation over hundreds of
millions of events — that per-event interpretation is the dominant query
cost once storage is in place.

This module compiles a filter **once per scan** into a single specialized
function with everything loop-invariant hoisted out of the per-event path:

* absent constraints are eliminated entirely — an unconstrained branch
  costs zero instead of a ``None`` check per event;
* LIKE patterns carry their precompiled regex; IN lists their normalized
  frozenset; literals are pre-coerced against every runtime type an
  attribute can take, so no ``_coerce`` runs per row;
* entities are resolved lazily — a filter without subject/object
  predicates never touches the registry;
* constant-false filters (empty window, empty scheduler-narrowed id set)
  short-circuit whole scans to an empty result.

The generated function is built with ``exec`` so the per-event path is one
flat code object whose constants are bound as default arguments (locals,
not global lookups).  Kernels are memoized on the filter's canonical
:func:`~repro.storage.filters.filter_fingerprint` — the same key as the
partition-scan cache — so repeated and concurrent scans of one filter
share a single compilation.

Semantics are bit-for-bit those of the interpreted path (differential- and
property-tested); exotic runtime value types fall back to
:meth:`AttrPredicate.matches` leaf-by-leaf.
"""

from __future__ import annotations

import operator
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.model.entities import ATTRIBUTES_BY_TYPE, normalize_attribute
from repro.model.events import SystemEvent, event_attribute_getter
from repro.service.cache import cacheable_filter
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateAnd,
    PredicateLeaf,
    PredicateNot,
    PredicateOr,
    _equals,
    filter_fingerprint,
    like_to_regex,
)

# An attribute-value test specialized for one predicate; receives the
# runtime value and returns whether the predicate holds.
ValueTest = Callable[[object], bool]

# A compiled predicate tree; receives the target object itself (an Entity
# for subject/object trees, a SystemEvent for event trees) — attribute
# resolution is hoisted to compile time, unlike PredicateNode.evaluate.
PredicateFn = Callable[[object], bool]

# Every canonical attribute any entity type exposes.  For these names,
# ``getattr(entity, name)`` raising AttributeError is exactly equivalent to
# ``Entity.attribute(name)`` raising it (each entity dataclass declares
# precisely its type's Table-1 attributes); names outside this set raise
# for every entity, i.e. the leaf is constant-false.
_ENTITY_DATA_ATTRS = frozenset(
    attr for attrs in ATTRIBUTES_BY_TYPE.values() for attr in attrs
)

# The compiled whole-filter check: ``test(event, entity_lookup) -> bool``.
KernelFn = Callable[[SystemEvent, Callable[[int], object]], bool]

_ORDERED_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _numeric_coercions(text: str) -> Dict[type, object]:
    """Pre-coerce a string literal toward every numeric runtime type.

    Mirrors ``filters._coerce`` (``type(actual)(expected)``) hoisted out of
    the loop: a missing entry means the coercion raised ``ValueError`` at
    compile time, exactly when it would have per event.
    """
    coerced: Dict[type, object] = {}
    try:
        coerced[int] = int(text)
    except ValueError:
        pass
    try:
        coerced[float] = float(text)
    except ValueError:
        pass
    return coerced


def compile_value_test(pred: AttrPredicate) -> ValueTest:
    """Specialize one ``attr <op> value`` comparison into a closure.

    The closure dispatches on the *exact* runtime type of the actual value
    (str/int/float cover every attribute in the data model); anything else
    falls back to the interpreted :meth:`AttrPredicate.matches`, keeping
    equivalence even for exotic values.
    """
    op = pred.op
    value = pred.value
    interpreted = pred.matches  # exact fallback for unexpected types

    if op in ("in", "not in"):
        raw = tuple(value)  # type: ignore[arg-type]
        normalized = frozenset(
            v.lower() if isinstance(v, str) else v for v in raw
        )
        norm_types = frozenset(type(v) for v in normalized)
        negate = op == "not in"

        def test_membership(actual: object) -> bool:
            key = actual.lower() if isinstance(actual, str) else actual
            if key in normalized:
                member = True
            elif type(key) in norm_types:
                member = False
            else:
                # cross-type literals ('4444' vs 4444): linear fallback
                member = any(_equals(actual, v) for v in raw)
            return member != negate

        return test_membership

    if pred.is_like:
        match = like_to_regex(str(value)).match
        negate = op == "!="

        def test_like(actual: object) -> bool:
            return bool(match(str(actual))) != negate

        return test_like

    if op in ("=", "!="):
        negate = op == "!="
        if isinstance(value, str):
            lowered = value.lower()
            numeric = _numeric_coercions(value)

            def test_eq_str(actual: object) -> bool:
                t = type(actual)
                if t is str:
                    return (actual.lower() == lowered) != negate
                if t is int or t is float:
                    expected = numeric.get(t)
                    # uncoercible literal compares str vs number: never equal
                    return (expected is not None and actual == expected) != negate
                return interpreted(actual)

            return test_eq_str
        if type(value) in (int, float):
            as_str = str(value).lower()

            def test_eq_num(actual: object) -> bool:
                t = type(actual)
                if t is str:
                    return (actual.lower() == as_str) != negate
                if t is int or t is float:
                    return (actual == value) != negate
                return interpreted(actual)

            return test_eq_num
        return interpreted

    compare = _ORDERED_OPS[op]
    if isinstance(value, str):
        numeric = _numeric_coercions(value)

        def test_ordered_str(actual: object) -> bool:
            t = type(actual)
            if t is str:
                return compare(actual, value)
            if t is int or t is float:
                expected = numeric.get(t)
                if expected is None:
                    return False  # interpreted path: TypeError -> False
                return compare(actual, expected)
            return interpreted(actual)

        return test_ordered_str
    if type(value) in (int, float):
        as_str = str(value)

        def test_ordered_num(actual: object) -> bool:
            t = type(actual)
            if t is str:
                return compare(actual, as_str)  # raw string ordering
            if t is int or t is float:
                return compare(actual, value)
            return interpreted(actual)

        return test_ordered_num
    return interpreted


def _compile_leaf(pred: AttrPredicate, role: str) -> PredicateFn:
    """One leaf with its attribute getter resolved at compile time.

    The interpreted path pays alias normalization, a validity check and a
    dict dispatch *per row per leaf* (``Entity.attribute`` /
    ``SystemEvent.attribute``); here the getter binds once and an
    attribute no target can have compiles to constant-false (the
    interpreter's ``AttributeError -> False``).
    """
    test = compile_value_test(pred)
    if role == "event":
        getter = event_attribute_getter(pred.attr)
        if getter is None:
            return lambda event: False
        return lambda event: test(getter(event))
    canonical = normalize_attribute(None, pred.attr)
    if canonical not in _ENTITY_DATA_ATTRS:
        return lambda entity: False
    attr_of = operator.attrgetter(canonical)

    def run_leaf(entity: object) -> bool:
        try:
            actual = attr_of(entity)
        except AttributeError:
            # valid attribute of a *different* entity type (e.g. a file
            # predicate evaluated against a network object)
            return False
        return test(actual)

    return run_leaf


def compile_predicate(node, role: str = "entity") -> PredicateFn:
    """Compile a predicate tree into a closure over its target object.

    ``role`` selects attribute resolution: ``"entity"`` trees receive an
    :class:`~repro.model.entities.Entity`, ``"event"`` trees the
    :class:`SystemEvent` itself.
    """
    if isinstance(node, PredicateLeaf):
        return _compile_leaf(node.pred, role)
    if isinstance(node, PredicateNot):
        child = compile_predicate(node.child, role)
        return lambda target: not child(target)
    if isinstance(node, (PredicateAnd, PredicateOr)):
        children = tuple(compile_predicate(c, role) for c in node.children)
        if isinstance(node, PredicateAnd):
            if len(children) == 2:
                first, second = children
                return lambda target: first(target) and second(target)
            return lambda target: all(c(target) for c in children)
        if len(children) == 2:
            first, second = children
            return lambda target: first(target) or second(target)
        return lambda target: any(c(target) for c in children)
    raise AssertionError(node)


def constant_false(flt: EventFilter) -> bool:
    """True when no event can ever satisfy ``flt``.

    Catches the scheduler's empty narrowings (``subject_ids=frozenset()``
    after a join produced no values) and empty window intersections, so a
    whole scan short-circuits instead of walking candidates per partition.
    """
    if flt.window.is_empty():
        return True
    for ids in (flt.agent_ids, flt.operations, flt.subject_ids, flt.object_ids):
        if ids is not None and not ids:
            return True
    return False


def _never(event: SystemEvent, lookup) -> bool:
    return False


def _always(event: SystemEvent, lookup) -> bool:
    return True


class ScanKernel:
    """One filter compiled for the scan hot path.

    ``test(event, lookup)`` is the full filter check (equivalent to
    resolving both entities and calling ``flt.matches``); ``test_predicates``
    checks only the subject/object/event predicate trees, for callers that
    already applied the structural constraints exactly (the cold tier's
    columnar prefilter).
    """

    __slots__ = (
        "fingerprint",
        "always_false",
        "has_predicates",
        "test",
        "test_predicates",
    )

    def __init__(
        self,
        fingerprint: Optional[tuple],
        always_false: bool,
        has_predicates: bool,
        test: KernelFn,
        test_predicates: KernelFn,
    ) -> None:
        self.fingerprint = fingerprint
        self.always_false = always_false
        self.has_predicates = has_predicates
        self.test = test
        self.test_predicates = test_predicates


def _generate(checks: List[Tuple[str, object]], name: str) -> KernelFn:
    """exec one flat test function; constants bind as default args (locals)."""
    if not checks:
        return _always
    params = ", ".join(f"{key}={key}" for key, _ in checks)
    body = "\n    ".join(line for _, line in _CHECK_LINES(checks))
    source = f"def {name}(event, lookup, {params}):\n    {body}\n    return True"
    env = {key: value for key, value in checks}
    exec(source, env)  # noqa: S102 - the source is template-generated here
    return env[name]


def _CHECK_LINES(checks: List[Tuple[str, object]]) -> Iterator[Tuple[str, str]]:
    for key, _ in checks:
        yield key, _CHECK_TEMPLATES[key]


_CHECK_TEMPLATES = {
    "_agent_ids": "if event.agent_id not in _agent_ids: return False",
    "_window_start": "if event.start_time < _window_start: return False",
    "_window_end": "if event.start_time >= _window_end: return False",
    "_operations": "if event.operation not in _operations: return False",
    "_object_type": "if event.object_type is not _object_type: return False",
    "_subject_ids": "if event.subject_id not in _subject_ids: return False",
    "_object_ids": "if event.object_id not in _object_ids: return False",
    "_subject_pred": (
        "if not _subject_pred(lookup(event.subject_id)): return False"
    ),
    "_object_pred": (
        "if not _object_pred(lookup(event.object_id)): return False"
    ),
    "_event_pred": "if not _event_pred(event): return False",
}


def compile_filter(
    flt: EventFilter, fingerprint: Optional[tuple] = None
) -> ScanKernel:
    """Compile ``flt`` into a :class:`ScanKernel` (no memoization here)."""
    if constant_false(flt):
        return ScanKernel(fingerprint, True, False, _never, _never)

    checks: List[Tuple[str, object]] = []
    if flt.agent_ids is not None:
        checks.append(("_agent_ids", flt.agent_ids))
    if flt.window.start is not None:
        checks.append(("_window_start", flt.window.start))
    if flt.window.end is not None:
        checks.append(("_window_end", flt.window.end))
    if flt.operations is not None:
        checks.append(("_operations", flt.operations))
    if flt.object_type is not None:
        checks.append(("_object_type", flt.object_type))
    if flt.subject_ids is not None:
        checks.append(("_subject_ids", flt.subject_ids))
    if flt.object_ids is not None:
        checks.append(("_object_ids", flt.object_ids))

    predicate_checks: List[Tuple[str, object]] = []
    if flt.subject_pred is not None:
        predicate_checks.append(
            ("_subject_pred", compile_predicate(flt.subject_pred, "entity"))
        )
    if flt.object_pred is not None:
        predicate_checks.append(
            ("_object_pred", compile_predicate(flt.object_pred, "entity"))
        )
    if flt.event_pred is not None:
        predicate_checks.append(
            ("_event_pred", compile_predicate(flt.event_pred, "event"))
        )

    test = _generate(checks + predicate_checks, "kernel")
    test_predicates = (
        _generate(predicate_checks, "kernel_predicates")
        if predicate_checks
        else _always
    )
    return ScanKernel(
        fingerprint, False, bool(predicate_checks), test, test_predicates
    )


class KernelCache:
    """Thread-safe LRU of compiled kernels keyed by filter fingerprint.

    Shares its key space with the partition-scan cache: two filters with
    equal fingerprints select the same events, so one kernel serves both.
    Scheduler-narrowed filters carrying giant join-derived id sets get
    one-off fingerprints (and pay an O(n log n) sort to compute them), so
    those compile uncached (``service.cache.cacheable_filter``, the same
    guard every fingerprint-keyed cache shares) — compilation is a few
    closures, far cheaper than fingerprinting thousands of ids per scan.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, ScanKernel]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def kernel_for(self, flt: EventFilter) -> ScanKernel:
        if not cacheable_filter(flt):
            return compile_filter(flt)
        fingerprint = filter_fingerprint(flt)
        with self._lock:
            kernel = self._entries.get(fingerprint)
            if kernel is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                return kernel
        kernel = compile_filter(flt, fingerprint)
        with self._lock:
            self.misses += 1
            self._entries[fingerprint] = kernel
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return kernel

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


_shared_cache = KernelCache()
_enabled = True


def kernel_for(flt: EventFilter) -> ScanKernel:
    """The process-wide memoized kernel for ``flt``."""
    return _shared_cache.kernel_for(flt)


def kernel_cache_stats() -> Dict[str, int]:
    return _shared_cache.stats()


def kernels_enabled() -> bool:
    """Whether scan sites should compile filters (True outside tests)."""
    return _enabled


@contextmanager
def use_kernels(enabled: bool):
    """Force-compile or force-interpret scans within the block.

    The interpreted path is kept as the differential oracle; benchmarks and
    equivalence tests flip this toggle.  Not safe to flip concurrently with
    scans on other threads (tests and benches are single-threaded at the
    point of use).
    """
    global _enabled
    previous = _enabled
    _enabled = enabled
    try:
        yield
    finally:
        _enabled = previous
