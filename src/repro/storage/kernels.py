"""Compiled scan kernels: one-shot ``EventFilter`` -> closure compilation.

Every scan in the system funnels per-candidate events through
:meth:`EventFilter.matches`, which re-interprets up to nine constraint
branches plus a recursive predicate tree per event, re-coerces literal
types per comparison and (before memoization) recompiled LIKE regexes per
row.  On the paper's workload — interactive investigation over hundreds of
millions of events — that per-event interpretation is the dominant query
cost once storage is in place.

This module compiles a filter **once per scan** into a single specialized
function with everything loop-invariant hoisted out of the per-event path:

* absent constraints are eliminated entirely — an unconstrained branch
  costs zero instead of a ``None`` check per event;
* LIKE patterns carry their precompiled regex; IN lists their normalized
  frozenset; literals are pre-coerced against every runtime type an
  attribute can take, so no ``_coerce`` runs per row;
* entities are resolved lazily — a filter without subject/object
  predicates never touches the registry;
* constant-false filters (empty window, empty scheduler-narrowed id set)
  short-circuit whole scans to an empty result.

The generated function is built with ``exec`` so the per-event path is one
flat code object whose constants are bound as default arguments (locals,
not global lookups).  Kernels are memoized on the filter's canonical
:func:`~repro.storage.filters.filter_fingerprint` — the same key as the
partition-scan cache — so repeated and concurrent scans of one filter
share a single compilation.

Semantics are bit-for-bit those of the interpreted path (differential- and
property-tested); exotic runtime value types fall back to
:meth:`AttrPredicate.matches` leaf-by-leaf.
"""

from __future__ import annotations

import operator
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.model.entities import ATTRIBUTES_BY_TYPE, normalize_attribute
from repro.model.events import SystemEvent, event_attribute_getter
from repro.obs.metrics import REGISTRY
from repro.obs.trace import trace_add
from repro.service.cache import cache_fingerprint
from repro.storage.blocks import (
    OP_CODE,
    OTYPE_CODE,
    ColumnBlock,
    Positions,
    block_attribute_getter,
)
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateAnd,
    PredicateLeaf,
    PredicateNot,
    PredicateOr,
    _equals,
    like_to_regex,
)

# An attribute-value test specialized for one predicate; receives the
# runtime value and returns whether the predicate holds.
ValueTest = Callable[[object], bool]

# A compiled predicate tree; receives the target object itself (an Entity
# for subject/object trees, a SystemEvent for event trees) — attribute
# resolution is hoisted to compile time, unlike PredicateNode.evaluate.
PredicateFn = Callable[[object], bool]

# Every canonical attribute any entity type exposes.  For these names,
# ``getattr(entity, name)`` raising AttributeError is exactly equivalent to
# ``Entity.attribute(name)`` raising it (each entity dataclass declares
# precisely its type's Table-1 attributes); names outside this set raise
# for every entity, i.e. the leaf is constant-false.
_ENTITY_DATA_ATTRS = frozenset(
    attr for attrs in ATTRIBUTES_BY_TYPE.values() for attr in attrs
)

# The compiled whole-filter check: ``test(event, entity_lookup) -> bool``.
KernelFn = Callable[[SystemEvent, Callable[[int], object]], bool]

_ORDERED_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _numeric_coercions(text: str) -> Dict[type, object]:
    """Pre-coerce a string literal toward every numeric runtime type.

    Mirrors ``filters._coerce`` (``type(actual)(expected)``) hoisted out of
    the loop: a missing entry means the coercion raised ``ValueError`` at
    compile time, exactly when it would have per event.
    """
    coerced: Dict[type, object] = {}
    try:
        coerced[int] = int(text)
    except ValueError:
        pass
    try:
        coerced[float] = float(text)
    except ValueError:
        pass
    return coerced


def compile_value_test(pred: AttrPredicate) -> ValueTest:
    """Specialize one ``attr <op> value`` comparison into a closure.

    The closure dispatches on the *exact* runtime type of the actual value
    (str/int/float cover every attribute in the data model); anything else
    falls back to the interpreted :meth:`AttrPredicate.matches`, keeping
    equivalence even for exotic values.
    """
    op = pred.op
    value = pred.value
    interpreted = pred.matches  # exact fallback for unexpected types

    if op in ("in", "not in"):
        raw = tuple(value)  # type: ignore[arg-type]
        normalized = frozenset(
            v.lower() if isinstance(v, str) else v for v in raw
        )
        norm_types = frozenset(type(v) for v in normalized)
        negate = op == "not in"

        def test_membership(actual: object) -> bool:
            key = actual.lower() if isinstance(actual, str) else actual
            if key in normalized:
                member = True
            elif type(key) in norm_types:
                member = False
            else:
                # cross-type literals ('4444' vs 4444): linear fallback
                member = any(_equals(actual, v) for v in raw)
            return member != negate

        return test_membership

    if pred.is_like:
        match = like_to_regex(str(value)).match
        negate = op == "!="

        def test_like(actual: object) -> bool:
            return bool(match(str(actual))) != negate

        return test_like

    if op in ("=", "!="):
        negate = op == "!="
        if isinstance(value, str):
            lowered = value.lower()
            numeric = _numeric_coercions(value)

            def test_eq_str(actual: object) -> bool:
                t = type(actual)
                if t is str:
                    return (actual.lower() == lowered) != negate
                if t is int or t is float:
                    expected = numeric.get(t)
                    # uncoercible literal compares str vs number: never equal
                    return (expected is not None and actual == expected) != negate
                return interpreted(actual)

            return test_eq_str
        if type(value) in (int, float):
            as_str = str(value).lower()

            def test_eq_num(actual: object) -> bool:
                t = type(actual)
                if t is str:
                    return (actual.lower() == as_str) != negate
                if t is int or t is float:
                    return (actual == value) != negate
                return interpreted(actual)

            return test_eq_num
        return interpreted

    compare = _ORDERED_OPS[op]
    if isinstance(value, str):
        numeric = _numeric_coercions(value)

        def test_ordered_str(actual: object) -> bool:
            t = type(actual)
            if t is str:
                return compare(actual, value)
            if t is int or t is float:
                expected = numeric.get(t)
                if expected is None:
                    return False  # interpreted path: TypeError -> False
                return compare(actual, expected)
            return interpreted(actual)

        return test_ordered_str
    if type(value) in (int, float):
        as_str = str(value)

        def test_ordered_num(actual: object) -> bool:
            t = type(actual)
            if t is str:
                return compare(actual, as_str)  # raw string ordering
            if t is int or t is float:
                return compare(actual, value)
            return interpreted(actual)

        return test_ordered_num
    return interpreted


def _compile_leaf(pred: AttrPredicate, role: str) -> PredicateFn:
    """One leaf with its attribute getter resolved at compile time.

    The interpreted path pays alias normalization, a validity check and a
    dict dispatch *per row per leaf* (``Entity.attribute`` /
    ``SystemEvent.attribute``); here the getter binds once and an
    attribute no target can have compiles to constant-false (the
    interpreter's ``AttributeError -> False``).
    """
    test = compile_value_test(pred)
    if role == "event":
        getter = event_attribute_getter(pred.attr)
        if getter is None:
            return lambda event: False
        return lambda event: test(getter(event))
    canonical = normalize_attribute(None, pred.attr)
    if canonical not in _ENTITY_DATA_ATTRS:
        return lambda entity: False
    attr_of = operator.attrgetter(canonical)

    def run_leaf(entity: object) -> bool:
        try:
            actual = attr_of(entity)
        except AttributeError:
            # valid attribute of a *different* entity type (e.g. a file
            # predicate evaluated against a network object)
            return False
        return test(actual)

    return run_leaf


def compile_predicate(node, role: str = "entity") -> PredicateFn:
    """Compile a predicate tree into a closure over its target object.

    ``role`` selects attribute resolution: ``"entity"`` trees receive an
    :class:`~repro.model.entities.Entity`, ``"event"`` trees the
    :class:`SystemEvent` itself.
    """
    if isinstance(node, PredicateLeaf):
        return _compile_leaf(node.pred, role)
    if isinstance(node, PredicateNot):
        child = compile_predicate(node.child, role)
        return lambda target: not child(target)
    if isinstance(node, (PredicateAnd, PredicateOr)):
        children = tuple(compile_predicate(c, role) for c in node.children)
        if isinstance(node, PredicateAnd):
            if len(children) == 2:
                first, second = children
                return lambda target: first(target) and second(target)
            return lambda target: all(c(target) for c in children)
        if len(children) == 2:
            first, second = children
            return lambda target: first(target) or second(target)
        return lambda target: any(c(target) for c in children)
    raise AssertionError(node)


def constant_false(flt: EventFilter) -> bool:
    """True when no event can ever satisfy ``flt``.

    Catches the scheduler's empty narrowings (``subject_ids=frozenset()``
    after a join produced no values) and empty window intersections, so a
    whole scan short-circuits instead of walking candidates per partition.
    """
    if flt.window.is_empty():
        return True
    for ids in (flt.agent_ids, flt.operations, flt.subject_ids, flt.object_ids):
        if ids is not None and not ids:
            return True
    return False


def _never(event: SystemEvent, lookup) -> bool:
    return False


def _always(event: SystemEvent, lookup) -> bool:
    return True


# The batch compilation target: evaluate a whole column block per call and
# return the surviving positions (a subset of ``candidates``).
SelectFn = Callable[[ColumnBlock, Positions, Callable[[int], object]], Positions]


def _never_select(block: ColumnBlock, candidates: Positions, lookup) -> List[int]:
    return []


def _pass_select(block: ColumnBlock, candidates: Positions, lookup) -> Positions:
    return candidates


def _byte_positions(column: bytearray, code: int, lo: int, hi: int) -> List[int]:
    """Positions of ``code`` in ``column[lo:hi]`` via C-speed ``find`` hops.

    The single-code membership pass over a contiguous candidate range is
    the workhorse of hot scans (one operation, one object type); skipping
    from match to match costs Python per *hit*, not per row.
    """
    out: List[int] = []
    append = out.append
    find = column.find
    i = find(code, lo, hi)
    while i >= 0:
        append(i)
        i = find(code, i + 1, hi)
    return out


def _entity_pass(
    candidates: Positions,
    ids: Sequence[int],
    pred: PredicateFn,
    lookup: Callable[[int], object],
    id_memo: Dict[int, bool],
    entity_memo: Dict[object, bool],
) -> List[int]:
    """Filter by an entity predicate, evaluated once per distinct entity.

    Equivalent to the per-event path (the predicate is a pure function of
    the registry's frozen entities), but survivors sharing a subject/object
    pay one dict probe instead of one evaluation per row.  Two memo levels,
    both kernel-lifetime: ``id_memo`` is valid for one registry (the
    caller resets it when the lookup's owner changes — registries intern
    ids and never rebind them, so id -> verdict is stable), and
    ``entity_memo`` — keyed by the entity *object* (frozen dataclasses
    hash by value, so equal entities from different registries share an
    answer) — survives registry switches.  Ids never resolve through
    ``lookup`` unless a surviving row references them, so an unregistered
    entity raises :class:`KeyError` exactly when the row path would.
    """
    out: List[int] = []
    append = out.append
    get = id_memo.get
    entity_get = entity_memo.get
    for i in candidates:
        entity_id = ids[i]
        ok = get(entity_id)
        if ok is None:
            entity = lookup(entity_id)
            ok = entity_get(entity)
            if ok is None:
                ok = entity_memo[entity] = pred(entity)
            id_memo[entity_id] = ok
        if ok:
            append(i)
    return out


def _compile_block_event_predicate(
    node,
) -> Callable[[ColumnBlock, int], bool]:
    """An event predicate tree compiled against columns instead of rows."""
    if isinstance(node, PredicateLeaf):
        pred = node.pred
        getter = block_attribute_getter(pred.attr)
        if getter is None:
            return lambda block, i: False
        test = compile_value_test(pred)
        return lambda block, i: test(getter(block, i))
    if isinstance(node, PredicateNot):
        child = _compile_block_event_predicate(node.child)
        return lambda block, i: not child(block, i)
    if isinstance(node, (PredicateAnd, PredicateOr)):
        children = tuple(
            _compile_block_event_predicate(c) for c in node.children
        )
        if isinstance(node, PredicateAnd):
            return lambda block, i: all(c(block, i) for c in children)
        return lambda block, i: any(c(block, i) for c in children)
    raise AssertionError(node)


def _compile_select(
    flt: EventFilter,
    subject_pred: Optional[PredicateFn],
    object_pred: Optional[PredicateFn],
) -> SelectFn:
    """Compile the whole-block evaluation order for ``flt``.

    Structural passes run cheapest-first over the columns (bisected window,
    dictionary-coded agents/ops/object types, id-set membership), each
    shrinking the selection before the next; predicate trees — the only
    passes that touch entities or strings — see only the surviving tail.
    Per-block vacuity (code universes, agent dictionary coverage) hoists
    whole passes, generalizing the cold tier's zone-map shortcuts to every
    block.  Results are exactly the per-event kernel's survivors.
    """
    window_start = flt.window.start
    window_end = flt.window.end
    agent_ids = flt.agent_ids
    op_codes: Optional[FrozenSet[int]] = (
        frozenset(OP_CODE[op] for op in flt.operations)
        if flt.operations is not None
        else None
    )
    single_op = next(iter(op_codes)) if op_codes and len(op_codes) == 1 else None
    otype_code = (
        OTYPE_CODE[flt.object_type] if flt.object_type is not None else None
    )
    otype_set = frozenset((otype_code,)) if otype_code is not None else None
    subject_ids = flt.subject_ids
    object_ids = flt.object_ids
    event_pred = (
        _compile_block_event_predicate(flt.event_pred)
        if flt.event_pred is not None
        else None
    )
    # Kernel-lifetime predicate memos (kernels are LRU-cached per filter
    # fingerprint, so these amortize entity evaluation across scans too).
    # The id-keyed level is valid for exactly one registry: a single slot
    # holds an (owner, subject-memo, object-memo) triple keyed by the
    # lookup's owner (every partition of a store shares one registry, so
    # iterative scans stay warm; switching stores resets).  The triple is
    # read and swapped whole, so parallel scans against different stores
    # can never write one registry's verdicts into another's memo — a
    # racing swap only loses warm entries.
    subject_memo: Dict[object, bool] = {}
    object_memo: Dict[object, bool] = {}
    memo_slot: List[Tuple[object, Dict[int, bool], Dict[int, bool]]] = [
        (None, {}, {})
    ]

    def select(
        block: ColumnBlock, candidates: Positions, lookup
    ) -> Positions:
        if window_start is not None or window_end is not None:
            if type(candidates) is range and block.time_sorted:
                lo, hi = block.window_bounds(
                    window_start, window_end, candidates.stop
                )
                candidates = range(max(lo, candidates.start), hi)
            else:
                t0 = block.t0
                if window_start is None:
                    candidates = [
                        i for i in candidates if t0[i] < window_end
                    ]
                elif window_end is None:
                    candidates = [
                        i for i in candidates if t0[i] >= window_start
                    ]
                else:
                    candidates = [
                        i
                        for i in candidates
                        if window_start <= t0[i] < window_end
                    ]
        if agent_ids is not None:
            wanted = block.agent_code_set(agent_ids)
            if wanted is not None:
                if not wanted:
                    return []
                codes = block.agent_codes
                if len(wanted) == 1:
                    (code,) = wanted
                    if type(candidates) is range and isinstance(
                        codes, bytearray
                    ):
                        candidates = _byte_positions(
                            codes, code, candidates.start, candidates.stop
                        )
                    else:
                        candidates = [i for i in candidates if codes[i] == code]
                else:
                    candidates = [i for i in candidates if codes[i] in wanted]
        if op_codes is not None and not block.op_universe <= op_codes:
            ops = block.op_codes
            if single_op is not None:
                if type(candidates) is range:
                    candidates = _byte_positions(
                        ops, single_op, candidates.start, candidates.stop
                    )
                else:
                    candidates = [i for i in candidates if ops[i] == single_op]
            else:
                candidates = [i for i in candidates if ops[i] in op_codes]
        if otype_set is not None and not block.otype_universe <= otype_set:
            otypes = block.otype_codes
            if type(candidates) is range:
                candidates = _byte_positions(
                    otypes, otype_code, candidates.start, candidates.stop
                )
            else:
                candidates = [i for i in candidates if otypes[i] == otype_code]
        if subject_ids is not None:
            col = block.subject_ids
            candidates = [i for i in candidates if col[i] in subject_ids]
        if object_ids is not None:
            col = block.object_ids
            candidates = [i for i in candidates if col[i] in object_ids]
        if subject_pred is not None or object_pred is not None:
            owner = getattr(lookup, "__self__", lookup)
            state = memo_slot[0]
            if state[0] is not owner:
                state = (owner, {}, {})
                memo_slot[0] = state
            if subject_pred is not None:
                candidates = _entity_pass(
                    candidates, block.subject_ids, subject_pred, lookup,
                    state[1], subject_memo,
                )
            if object_pred is not None:
                candidates = _entity_pass(
                    candidates, block.object_ids, object_pred, lookup,
                    state[2], object_memo,
                )
        if event_pred is not None:
            candidates = [i for i in candidates if event_pred(block, i)]
        return candidates

    return select


class ScanKernel:
    """One filter compiled for the scan hot path.

    ``test(event, lookup)`` is the full filter check (equivalent to
    resolving both entities and calling ``flt.matches``); ``test_predicates``
    checks only the subject/object/event predicate trees, for callers that
    already applied the structural constraints exactly.  ``select(block,
    candidates, lookup)`` is the batch target: it evaluates a whole
    :class:`~repro.storage.blocks.ColumnBlock` and returns the surviving
    positions, equal to filtering ``candidates`` with ``test`` row by row.
    """

    __slots__ = (
        "fingerprint",
        "always_false",
        "has_predicates",
        "test",
        "test_predicates",
        "select",
    )

    def __init__(
        self,
        fingerprint: Optional[tuple],
        always_false: bool,
        has_predicates: bool,
        test: KernelFn,
        test_predicates: KernelFn,
        select: SelectFn,
    ) -> None:
        self.fingerprint = fingerprint
        self.always_false = always_false
        self.has_predicates = has_predicates
        self.test = test
        self.test_predicates = test_predicates
        self.select = select


def _generate(checks: List[Tuple[str, object]], name: str) -> KernelFn:
    """exec one flat test function; constants bind as default args (locals)."""
    if not checks:
        return _always
    params = ", ".join(f"{key}={key}" for key, _ in checks)
    body = "\n    ".join(line for _, line in _CHECK_LINES(checks))
    source = f"def {name}(event, lookup, {params}):\n    {body}\n    return True"
    env = {key: value for key, value in checks}
    exec(source, env)  # noqa: S102 - the source is template-generated here
    return env[name]


def _CHECK_LINES(checks: List[Tuple[str, object]]) -> Iterator[Tuple[str, str]]:
    for key, _ in checks:
        yield key, _CHECK_TEMPLATES[key]


_CHECK_TEMPLATES = {
    "_agent_ids": "if event.agent_id not in _agent_ids: return False",
    "_window_start": "if event.start_time < _window_start: return False",
    "_window_end": "if event.start_time >= _window_end: return False",
    "_operations": "if event.operation not in _operations: return False",
    "_object_type": "if event.object_type is not _object_type: return False",
    "_subject_ids": "if event.subject_id not in _subject_ids: return False",
    "_object_ids": "if event.object_id not in _object_ids: return False",
    "_subject_pred": (
        "if not _subject_pred(lookup(event.subject_id)): return False"
    ),
    "_object_pred": (
        "if not _object_pred(lookup(event.object_id)): return False"
    ),
    "_event_pred": "if not _event_pred(event): return False",
}


def compile_filter(
    flt: EventFilter, fingerprint: Optional[tuple] = None
) -> ScanKernel:
    """Compile ``flt`` into a :class:`ScanKernel` (no memoization here)."""
    if constant_false(flt):
        return ScanKernel(fingerprint, True, False, _never, _never, _never_select)

    checks: List[Tuple[str, object]] = []
    if flt.agent_ids is not None:
        checks.append(("_agent_ids", flt.agent_ids))
    if flt.window.start is not None:
        checks.append(("_window_start", flt.window.start))
    if flt.window.end is not None:
        checks.append(("_window_end", flt.window.end))
    if flt.operations is not None:
        checks.append(("_operations", flt.operations))
    if flt.object_type is not None:
        checks.append(("_object_type", flt.object_type))
    if flt.subject_ids is not None:
        checks.append(("_subject_ids", flt.subject_ids))
    if flt.object_ids is not None:
        checks.append(("_object_ids", flt.object_ids))

    predicate_checks: List[Tuple[str, object]] = []
    subject_pred: Optional[PredicateFn] = None
    object_pred: Optional[PredicateFn] = None
    if flt.subject_pred is not None:
        subject_pred = compile_predicate(flt.subject_pred, "entity")
        predicate_checks.append(("_subject_pred", subject_pred))
    if flt.object_pred is not None:
        object_pred = compile_predicate(flt.object_pred, "entity")
        predicate_checks.append(("_object_pred", object_pred))
    if flt.event_pred is not None:
        predicate_checks.append(
            ("_event_pred", compile_predicate(flt.event_pred, "event"))
        )

    test = _generate(checks + predicate_checks, "kernel")
    test_predicates = (
        _generate(predicate_checks, "kernel_predicates")
        if predicate_checks
        else _always
    )
    select = (
        _compile_select(flt, subject_pred, object_pred)
        if checks or predicate_checks
        else _pass_select
    )
    return ScanKernel(
        fingerprint, False, bool(predicate_checks), test, test_predicates, select
    )


# Compile-vs-reuse metrics: shared by every KernelCache instance (they
# all feed one process-wide compilation economy).
_M_KERNEL_COMPILED = REGISTRY.counter(
    "aiql_kernel_compiled_total", "Scan kernels compiled (cache miss or uncacheable)"
)
_M_KERNEL_REUSED = REGISTRY.counter(
    "aiql_kernel_reused_total", "Scan kernels served from the kernel cache"
)


class KernelCache:
    """Thread-safe LRU of compiled kernels keyed by filter fingerprint.

    Shares its key space with the partition-scan cache: two filters with
    equal fingerprints select the same events, so one kernel serves both.
    Scheduler-narrowed filters carrying giant join-derived id sets get
    one-off fingerprints (and pay an O(n log n) sort to compute them), so
    those compile uncached (``service.cache.cacheable_filter``, the same
    guard every fingerprint-keyed cache shares) — compilation is a few
    closures, far cheaper than fingerprinting thousands of ids per scan.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, ScanKernel]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def kernel_for(self, flt: EventFilter) -> ScanKernel:
        fingerprint = cache_fingerprint(flt)
        if fingerprint is None:
            # Uncacheable (giant narrowed id set): compiled fresh per scan.
            _M_KERNEL_COMPILED.inc()
            trace_add("kernel_compiled")
            return compile_filter(flt)
        with self._lock:
            kernel = self._entries.get(fingerprint)
            if kernel is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                _M_KERNEL_REUSED.inc()
                trace_add("kernel_reused")
                return kernel
        kernel = compile_filter(flt, fingerprint)
        _M_KERNEL_COMPILED.inc()
        trace_add("kernel_compiled")
        with self._lock:
            self.misses += 1
            self._entries[fingerprint] = kernel
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return kernel

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


_shared_cache = KernelCache()
_enabled = True
_columnar = True


def kernel_for(flt: EventFilter) -> ScanKernel:
    """The process-wide memoized kernel for ``flt``."""
    return _shared_cache.kernel_for(flt)


def kernel_cache_stats() -> Dict[str, int]:
    return _shared_cache.stats()


def kernels_enabled() -> bool:
    """Whether scan sites should compile filters (True outside tests)."""
    return _enabled


@contextmanager
def use_kernels(enabled: bool):
    """Force-compile or force-interpret scans within the block.

    The interpreted path is kept as the differential oracle; benchmarks and
    equivalence tests flip this toggle.  Not safe to flip concurrently with
    scans on other threads (tests and benches are single-threaded at the
    point of use).
    """
    global _enabled
    previous = _enabled
    _enabled = enabled
    try:
        yield
    finally:
        _enabled = previous


def columnar_enabled() -> bool:
    """Whether scans evaluate whole blocks via ``ScanKernel.select``.

    Off, scans with kernels enabled walk candidates through the per-event
    compiled closure (the pre-columnar behaviour); with kernels *also* off
    they fall back to the interpreted oracle.  Only consulted when kernels
    are enabled — the interpreted path is always row-at-a-time.
    """
    return _columnar


def set_columnar(enabled: bool) -> None:
    """Process-wide columnar toggle (see ``SystemConfig.columnar``)."""
    global _columnar
    _columnar = bool(enabled)


@contextmanager
def use_columnar(enabled: bool):
    """Force block-at-a-time or per-event compiled scans within the block.

    The benchmark's ``columnar`` cell and the differential suites flip
    this; like :func:`use_kernels` it is not safe to flip concurrently
    with scans on other threads.
    """
    global _columnar
    previous = _columnar
    _columnar = enabled
    try:
        yield
    finally:
        _columnar = previous
