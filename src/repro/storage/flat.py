"""Unpartitioned storage baseline (the paper's stock-PostgreSQL setting).

For the end-to-end comparison (Sec. 6.2.2) the PostgreSQL and Neo4j
baselines "store the same copies of data and employ the same schema and
index designs ... but they do not employ our domain-specific data storage
optimizations such as spatial and temporal partitioning".  The
:class:`FlatStore` is exactly that: one monolithic event heap with the same
entity-attribute indexes, but no partition pruning and no scan parallelism.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.model.entities import Entity, EntityRegistry
from repro.model.events import SystemEvent
from repro.storage.blocks import BlockScanResult
from repro.storage.filters import EventFilter
from repro.storage.index import DEFAULT_INDEXED_ATTRIBUTES, EntityAttributeIndex
from repro.storage.table import EventTable


class FlatStore:
    """Single-heap event storage with attribute indexes."""

    def __init__(
        self,
        registry: Optional[EntityRegistry] = None,
        indexed_attributes=None,
    ) -> None:
        self.registry = registry if registry is not None else EntityRegistry()
        self.entity_index = EntityAttributeIndex(
            indexed_attributes or DEFAULT_INDEXED_ATTRIBUTES
        )
        self._table = EventTable(self.registry.get)
        self._indexed_entities: set[int] = set()

    def register_entity(self, entity: Entity) -> None:
        if entity.id in self._indexed_entities:
            return
        self._indexed_entities.add(entity.id)
        self.entity_index.add(entity)

    def add_event(self, event: SystemEvent) -> None:
        self._table.append(event)

    def add_batch(self, events: Sequence[SystemEvent]) -> None:
        """Append a committed batch atomically (one visibility bump)."""
        self._table.append_batch(events)

    def remove_events(self, events: Sequence[SystemEvent]) -> int:
        """Remove committed events (the cold-migration hand-off).

        The heap is rebuilt without the removed rows and swapped in
        atomically; readers mid-scan keep the old (still correct) table.
        Must run on the single writer, serialized with appends.
        """
        ids = {e.event_id for e in events}
        keep = [e for e in self._table if e.event_id not in ids]
        removed = len(self._table) - len(keep)
        fresh = EventTable(self.registry.get)
        fresh.append_batch(keep)
        self._table = fresh
        return removed

    def time_range(self):
        """(min, max) event start time over the hot heap."""
        return (self._table.min_time, self._table.max_time)

    def scan_columns(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> BlockScanResult:
        """Survivors as a single-heap selection (see ``EventStore.scan_columns``)."""
        # ``parallel`` accepted for interface compatibility; a flat heap has
        # no partitions to parallelize over.  The table compiles the filter
        # into a scan kernel itself (one heap, one compilation).
        from repro.storage.database import narrow_with_index

        if use_entity_index:
            flt = narrow_with_index(flt, self.entity_index)
        return BlockScanResult([self._table.scan_select(flt, None)])

    def scan(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> List[SystemEvent]:
        return self.scan_columns(flt, parallel, use_entity_index).events()

    def full_scan(self, flt: EventFilter) -> List[SystemEvent]:
        return self._table.full_scan(flt)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[SystemEvent]:
        return iter(self._table)

    def stats(self) -> Dict[str, object]:
        return {
            "events": len(self._table),
            "entities": len(self.registry),
            "partitions": 1,
        }
