"""Snapshot persistence for event stores.

The paper keeps "at least a 0.5-1 year worth of data" on disk in
PostgreSQL; our in-memory substrate gets a simple durable form instead:
JSON-lines snapshots of the entity population and the event stream.
Snapshots restore into any combination of store backends (the entity ids
and event ids/sequence numbers are preserved verbatim, so query results
over a restored store are identical to the original — a test invariant).

Format: one header line, then one line per entity (in id order), then one
line per event (in event-id order).

Durability: snapshots are written to a temporary file in the destination
directory, flushed and fsync'd, then atomically renamed over the target.
A crash mid-snapshot therefore never truncates a previously good snapshot
— readers see either the old complete file or the new complete file.
The write path streams: entities and events are encoded one line at a
time from their iterables, so snapshotting a large store never
materializes a second full copy in memory.

The per-record codecs (:func:`entity_record` / :func:`rebuild_entity`,
:func:`event_record` / :func:`rebuild_event`) are shared with the
write-ahead log of the tiered storage subsystem (:mod:`repro.tier`), so a
WAL record and a snapshot line round-trip through the same format.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.model.entities import (
    Entity,
    EntityRegistry,
    FileEntity,
    NetworkEntity,
    PipeEntity,
    ProcessEntity,
    RegistryEntity,
)
from repro.model.events import Operation, SystemEvent

FORMAT_VERSION = 1

_TYPE_TAGS = {
    FileEntity: "file",
    ProcessEntity: "proc",
    NetworkEntity: "ip",
    RegistryEntity: "reg",
    PipeEntity: "pipe",
}


class SnapshotError(ValueError):
    """Raised for malformed or incompatible snapshot files."""


def entity_record(entity: Entity) -> dict:
    record = {"t": _TYPE_TAGS[type(entity)]}
    record.update(
        {
            field: getattr(entity, field)
            for field in entity.__dataclass_fields__  # type: ignore[attr-defined]
        }
    )
    return record


def event_record(event: SystemEvent) -> dict:
    return {
        "eid": event.event_id,
        "a": event.agent_id,
        "s": event.seq,
        "t0": event.start_time,
        "t1": event.end_time,
        "op": event.operation.value,
        "subj": event.subject_id,
        "obj": event.object_id,
        "ot": event.object_type.value,
        "amt": event.amount,
        "fc": event.failure_code,
    }


def save_snapshot(path, registry: EntityRegistry, events: Iterable[SystemEvent]) -> int:
    """Write a snapshot atomically; returns the number of events written.

    The snapshot lands under a temporary name first and is renamed over
    ``path`` only after every line is flushed and fsync'd, so an existing
    snapshot at ``path`` survives any crash during the write.  ``events``
    is consumed lazily (one line encoded at a time).
    """
    path = Path(path)
    # Sorting holds references only (the registry already owns the
    # entities); events stream straight from the iterable to the file.
    entities = sorted(registry, key=lambda e: e.id)
    count = 0
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            header = {"version": FORMAT_VERSION, "entities": len(entities)}
            handle.write(json.dumps(header) + "\n")
            for entity in entities:
                handle.write(json.dumps(entity_record(entity)) + "\n")
            for event in events:
                handle.write(json.dumps(event_record(event)) + "\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return count


def rebuild_entity(registry: EntityRegistry, record: dict) -> Entity:
    """Re-intern one :func:`entity_record` dict into ``registry``."""
    record = dict(record)
    tag = record.pop("t")
    expected_id = record.pop("id")
    agent_id = record.pop("agent_id")
    if tag == "file":
        entity = registry.file(agent_id, record.pop("name"), **record)
    elif tag == "proc":
        entity = registry.process(agent_id, record.pop("pid"),
                                  record.pop("exe_name"), **record)
    elif tag == "ip":
        entity = registry.connection(
            agent_id,
            record.pop("src_ip"),
            record.pop("src_port"),
            record.pop("dst_ip"),
            record.pop("dst_port"),
            **record,
        )
    elif tag == "reg":
        entity = registry.registry_value(
            agent_id, record.pop("key"), record.pop("value_name")
        )
    elif tag == "pipe":
        entity = registry.pipe(agent_id, record.pop("name"), **record)
    else:
        raise SnapshotError(f"unknown entity tag {tag!r}")
    if entity.id != expected_id:
        raise SnapshotError(
            f"entity id mismatch on restore: expected {expected_id}, "
            f"got {entity.id} (snapshot not loaded into a fresh registry?)"
        )
    return entity


def rebuild_event(record: dict) -> SystemEvent:
    """Decode one :func:`event_record` dict back into a :class:`SystemEvent`."""
    from repro.model.entities import EntityType

    return SystemEvent(
        event_id=record["eid"],
        agent_id=record["a"],
        seq=record["s"],
        start_time=record["t0"],
        end_time=record["t1"],
        operation=Operation.parse(record["op"]),
        subject_id=record["subj"],
        object_id=record["obj"],
        object_type=EntityType(record["ot"]),
        amount=record.get("amt", 0),
        failure_code=record.get("fc", 0),
    )


def load_snapshot(
    path,
    registry: EntityRegistry,
    stores: Sequence,
) -> int:
    """Restore a snapshot into ``stores`` (which must share ``registry``,
    fresh/empty).  Returns the number of events restored."""
    path = Path(path)
    events = 0
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise SnapshotError("empty snapshot file")
        header = json.loads(header_line)
        if header.get("version") != FORMAT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot version {header.get('version')!r}"
            )
        remaining_entities = int(header.get("entities", 0))
        for line in handle:
            record = json.loads(line)
            if remaining_entities > 0:
                entity = rebuild_entity(registry, record)
                for store in stores:
                    store.register_entity(entity)
                remaining_entities -= 1
            else:
                event = rebuild_event(record)
                for store in stores:
                    store.add_event(event)
                events += 1
    if remaining_entities > 0:
        raise SnapshotError("snapshot truncated: entities missing")
    return events
