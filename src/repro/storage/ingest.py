"""Ingestion pipeline: agents -> central storage (paper Fig. 2, Sec. 3).

Monitoring agents stream entity observations and events to the central
server.  The :class:`Ingestor` is the server side of that pipeline:

* deduplicates entities through the shared :class:`EntityRegistry`;
* applies NTP-style clock correction per agent (Sec. 3.2);
* assigns globally unique event ids and per-agent monotone sequence
  numbers (Table 2's Event Sequence);
* validates events against the data model;
* fans the stream out to any number of attached stores, so the optimized
  store and the baseline stores ingest identical copies of the data (the
  fairness requirement of Sec. 6.2.2).

Validation and entity deduplication are hoisted above the fan-out: an event
is validated exactly once (:meth:`Ingestor.build_event`) and an entity is
registered into each store exactly once, no matter how many stores are
attached or how often agents re-observe the entity.  Live ingestion goes
through :class:`repro.service.stream.StreamSession`, which stages events
built here and commits them in batches via :meth:`Ingestor.commit`.
"""

from __future__ import annotations

import contextlib
import itertools
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.model.entities import (
    Entity,
    EntityRegistry,
    FileEntity,
    NetworkEntity,
    ProcessEntity,
)
from repro.model.events import Operation, SystemEvent, validate_event
from repro.model.time import ClockSynchronizer


class IngestError(ValueError):
    """Raised when an agent submits an event the data model rejects."""


class Ingestor:
    """Server-side ingestion fan-out."""

    def __init__(
        self,
        registry: Optional[EntityRegistry] = None,
        clock: Optional[ClockSynchronizer] = None,
    ) -> None:
        self.registry = registry if registry is not None else EntityRegistry()
        self.clock = clock or ClockSynchronizer()
        self._stores: List[object] = []
        self._event_ids = itertools.count(1)
        self._seq: Dict[int, int] = defaultdict(int)
        self._events_ingested = 0
        self._known_entities: set[int] = set()
        self._staged = 0
        self.validations = 0
        # Durability hook (repro.tier): when a write-ahead log is attached,
        # every commit appends to it before any store publishes, and the
        # entities observed since the previous append ride in the same
        # record as the first events that reference them.
        self.wal = None
        self._wal_pending_entities: List[Entity] = []
        self._wal_lock = contextlib.nullcontext()

    def attach(self, store: object) -> None:
        """Attach a store (EventStore / FlatStore / SegmentedStore).

        A store attached after entities were already observed receives a
        replay of the registry, so its attribute indexes match its peers'.
        """
        if store.registry is not self.registry:  # type: ignore[attr-defined]
            raise ValueError("attached store must share the ingestor's registry")
        self._stores.append(store)
        for entity in self.registry:
            store.register_entity(entity)  # type: ignore[attr-defined]

    def attach_wal(self, wal, logged_entity_ids=(), lock=None) -> None:
        """Attach a write-ahead log; commits append to it before publishing.

        ``logged_entity_ids`` names the entities already durable (in the
        snapshot or the log itself, after recovery); every other entity
        currently in the registry is queued so the next batch record
        carries it.  ``lock`` (the tiered store's writer lock) makes the
        WAL-append + store-publish sequence atomic with respect to
        checkpoints: without it, a checkpoint could snapshot the hot tier
        *before* a batch publishes yet reset the WAL *after* the batch's
        record landed — acknowledging a commit that is durable nowhere.
        """
        self.wal = wal
        self._wal_lock = lock if lock is not None else contextlib.nullcontext()
        logged = set(logged_entity_ids)
        self._wal_pending_entities = [
            entity for entity in self.registry if entity.id not in logged
        ]

    def resume(
        self,
        next_event_id: int,
        seqs: Dict[int, int],
        events_ingested: int,
    ) -> None:
        """Fast-forward counters after crash recovery (repro.tier).

        New events continue the durable stream: globally unique ids pick
        up after the newest recovered event and per-agent sequence numbers
        after each agent's newest, so the monotonicity invariants the
        stores' watermarks rely on hold across the crash.
        """
        self._event_ids = itertools.count(next_event_id)
        self._seq = defaultdict(int, dict(seqs))
        self._events_ingested = events_ingested
        self._staged = 0
        self._known_entities.update(entity.id for entity in self.registry)

    @property
    def events_ingested(self) -> int:
        return self._events_ingested

    # -- entity observation helpers (delegate to the registry) -------------

    def process(
        self,
        agent_id: int,
        pid: int,
        exe_name: str,
        user: str = "root",
        cmd: str = "",
        signature: str = "",
        generation: int = 0,
    ) -> ProcessEntity:
        entity = self.registry.process(
            agent_id, pid, exe_name, user=user, cmd=cmd,
            signature=signature, generation=generation,
        )
        self._register(entity)
        return entity

    def file(
        self,
        agent_id: int,
        name: str,
        owner: str = "root",
        group: str = "root",
        vol_id: int = 0,
        data_id: int = 0,
    ) -> FileEntity:
        entity = self.registry.file(
            agent_id, name, owner=owner, group=group,
            vol_id=vol_id, data_id=data_id,
        )
        self._register(entity)
        return entity

    def connection(
        self,
        agent_id: int,
        src_ip: str,
        src_port: int,
        dst_ip: str,
        dst_port: int,
        protocol: str = "tcp",
    ) -> NetworkEntity:
        entity = self.registry.connection(
            agent_id, src_ip, src_port, dst_ip, dst_port, protocol=protocol
        )
        self._register(entity)
        return entity

    def registry_value(
        self, agent_id: int, key: str, value_name: str = ""
    ):
        entity = self.registry.registry_value(agent_id, key, value_name)
        self._register(entity)
        return entity

    def pipe(self, agent_id: int, name: str, mode: str = "fifo"):
        entity = self.registry.pipe(agent_id, name, mode=mode)
        self._register(entity)
        return entity

    def observe(self, entity: Entity) -> None:
        """Register an externally rebuilt entity into the fan-out.

        The shard-worker entity path (:mod:`repro.shard`): the coordinator
        broadcasts entity records and each worker re-interns them, then
        feeds them through the same dedup + WAL-pending + store fan-out an
        agent observation takes.  Idempotent per entity id.
        """
        self._register(entity)

    def seq_maxima(self) -> Dict[int, int]:
        """Per-agent max sequence numbers issued/recovered so far."""
        return dict(self._seq)

    def _register(self, entity: Entity) -> None:
        # Hoisted dedup: agents re-observe the same entity constantly (every
        # event mentions two), so the fan-out runs once per entity, not once
        # per observation per store.
        if entity.id in self._known_entities:
            return
        self._known_entities.add(entity.id)
        if self.wal is not None:
            self._wal_pending_entities.append(entity)
        for store in self._stores:
            store.register_entity(entity)  # type: ignore[attr-defined]

    # -- event ingestion ----------------------------------------------------

    def build_event(
        self,
        agent_id: int,
        timestamp: float,
        operation,
        subject: Entity,
        obj: Entity,
        duration: float = 0.0,
        amount: int = 0,
        failure_code: int = 0,
    ) -> SystemEvent:
        """Clock-correct, number and validate one event, without storing it.

        This is the single validation point of the pipeline: an event is
        checked against the data model exactly once here, regardless of how
        many stores the fan-out will later append it to.  Streaming sessions
        call this at append time and commit the already-validated batch.

        Every built event MUST reach the stores through :meth:`commit` (or
        the caller's own batched append): its id is issued into the stream
        order, and the stores' commit watermarks assume ids become visible
        in order.
        """
        if isinstance(operation, str):
            operation = Operation.parse(operation)
        corrected = self.clock.correct(agent_id, timestamp)
        self._seq[agent_id] += 1
        event = SystemEvent(
            event_id=next(self._event_ids),
            agent_id=agent_id,
            seq=self._seq[agent_id],
            start_time=corrected,
            end_time=corrected + max(duration, 0.0),
            operation=operation,
            subject_id=subject.id,
            object_id=obj.id,
            object_type=obj.entity_type,
            amount=amount,
            failure_code=failure_code,
        )
        try:
            validate_event(event, subject, obj)
        except ValueError as exc:
            raise IngestError(str(exc)) from exc
        self.validations += 1
        self._staged += 1
        return event

    def emit(
        self,
        agent_id: int,
        timestamp: float,
        operation,
        subject: Entity,
        obj: Entity,
        duration: float = 0.0,
        amount: int = 0,
        failure_code: int = 0,
    ) -> SystemEvent:
        """Ingest one event; returns the stored (corrected) form.

        Refused while a streaming batch is staged: the stores' commit
        watermarks require event ids to become visible in issue order, and
        a single-event append racing ahead of staged (lower-id) events
        would let a reader observe a later batch half-published.  Commit
        the session first.
        """
        if self._staged:
            raise IngestError(
                "cannot emit single events while a streaming batch is "
                "staged; commit the StreamSession first"
            )
        event = self.build_event(
            agent_id, timestamp, operation, subject, obj,
            duration=duration, amount=amount, failure_code=failure_code,
        )
        self._staged -= 1
        with self._wal_lock:
            self._wal_append((event,))
            for store in self._stores:
                store.add_event(event)  # type: ignore[attr-defined]
            self._events_ingested += 1
        return event

    def _wal_append(self, events: Sequence[SystemEvent]) -> None:
        """Make a batch durable before any store publishes it.

        A failed append leaves the pending-entity queue intact and
        nothing published — the commit simply did not happen.
        """
        if self.wal is None:
            return
        entities = self._wal_pending_entities
        self.wal.append(entities, events)
        self._wal_pending_entities = []

    def commit(self, events: Sequence[SystemEvent]) -> None:
        """Fan a pre-validated batch out to every attached store.

        Stores exposing ``add_batch`` receive the whole batch (atomic
        publication, one cache invalidation per touched partition); others
        fall back to per-event appends.
        """
        if not events:
            return
        events = tuple(events)
        # max() tolerates batches built outside build_event (e.g. replayed
        # snapshots); the staged counter must never go negative.
        self._staged = max(0, self._staged - len(events))
        # The lock spans WAL append AND publication: a checkpoint (which
        # holds the same lock) therefore sees either neither or both, so
        # its snapshot + WAL reset can never strand an acknowledged batch.
        with self._wal_lock:
            self._wal_append(events)
            for store in self._stores:
                add_batch = getattr(store, "add_batch", None)
                if add_batch is not None:
                    add_batch(events)
                else:
                    for event in events:
                        store.add_event(event)  # type: ignore[attr-defined]
            self._events_ingested += len(events)

    def emit_batch(
        self,
        agent_id: int,
        records: Sequence[tuple],
    ) -> List[SystemEvent]:
        """Ingest ``(timestamp, operation, subject, object, amount)`` tuples."""
        out = []
        for timestamp, operation, subject, obj, amount in records:
            out.append(
                self.emit(agent_id, timestamp, operation, subject, obj, amount=amount)
            )
        return out
