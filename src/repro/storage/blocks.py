"""Typed column blocks: the native representation of stored events.

The hot tier used to keep a Python list of :class:`SystemEvent` objects and
evaluate filters one closure call per row; only the cold tier stored
columns.  A :class:`ColumnBlock` makes the columnar layout the physical
format everywhere (ISSUE 6): each partition/segment/decoded cold segment
holds append-only typed columns —

* ``array('q')`` int64 columns for event/subject/object ids, seqs, amounts
  and failure codes;
* ``array('d')`` float64 columns for start/end times;
* one-byte dictionary codes for operation and object type (both enums are
  closed: 11 operations, 5 entity types share process-wide code tables);
* a per-block agent dictionary (``agent_id -> code``), byte-wide until a
  block sees a 257th distinct agent and then promoted to ``array('q')``.

:class:`SystemEvent` becomes a *lazily materialized view*: ``event_at``
rebuilds the frozen dataclass from the columns on first access and caches
it per position, so scans that only narrow (scheduler constrained
execution, cache probes) never construct row objects, while repeated
materialization of the same survivors is paid once.

Batch kernels (:mod:`repro.storage.kernels`) evaluate whole blocks against
these columns and return *selections* — position index lists —
(:class:`Selection`); a store-level scan is a :class:`BlockScanResult`, a
set of per-block selections that can answer the engine's narrowing
questions (distinct field values, time bounds, join keys) straight from
the columns and materializes rows only for final results.

Concurrency: blocks inherit the single-writer/many-readers contract of the
tables that own them.  Appends write every column before the owner
publishes the row (the table's visibility bump), ``bytearray``/``array``
appends are atomic under the GIL, and the rare dictionary/universe updates
publish immutable copies (copy-on-write) so readers never iterate a
mutating container.
"""

from __future__ import annotations

import itertools
from array import array
from bisect import bisect_left
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.model.entities import EntityType
from repro.model.events import Operation, SystemEvent

# Closed-enum dictionaries, shared process-wide: codes are the enums'
# definition order, so every block and every cold segment agrees on them.
OP_BY_CODE: Tuple[Operation, ...] = tuple(Operation)
OP_CODE: Dict[Operation, int] = {op: i for i, op in enumerate(OP_BY_CODE)}
OP_CODE_BY_VALUE: Dict[str, int] = {op.value: i for i, op in enumerate(OP_BY_CODE)}
OP_VALUE_BY_CODE: Tuple[str, ...] = tuple(op.value for op in OP_BY_CODE)

OTYPE_BY_CODE: Tuple[EntityType, ...] = tuple(EntityType)
OTYPE_CODE: Dict[EntityType, int] = {t: i for i, t in enumerate(OTYPE_BY_CODE)}
OTYPE_CODE_BY_VALUE: Dict[str, int] = {
    t.value: i for i, t in enumerate(OTYPE_BY_CODE)
}

# Block generations: a process-wide monotone counter stamped at block
# construction.  A rebuilt partition (cold migration, remove_events) gets a
# fresh block and therefore a fresh generation, which is what the shared
# scan-result cache keys its entries on — a selection cached against one
# generation can never be served for a different physical block.
_generations = itertools.count(1)

Positions = Union[range, List[int]]

AgentCodes = Union[bytearray, "array[int]"]


class ColumnBlock:
    """Append-only typed columns for one table/segment of events."""

    __slots__ = (
        "event_ids",
        "agent_codes",
        "seqs",
        "t0",
        "t1",
        "op_codes",
        "subject_ids",
        "object_ids",
        "otype_codes",
        "amounts",
        "failure_codes",
        "agents",
        "_agent_code",
        "op_universe",
        "otype_universe",
        "time_sorted",
        "min_time",
        "max_time",
        "max_event_id",
        "generation",
        "_rows",
    )

    def __init__(self) -> None:
        self.event_ids: "array[int]" = array("q")
        self.agent_codes: AgentCodes = bytearray()
        self.seqs: "array[int]" = array("q")
        self.t0: "array[float]" = array("d")
        self.t1: "array[float]" = array("d")
        self.op_codes = bytearray()
        self.subject_ids: "array[int]" = array("q")
        self.object_ids: "array[int]" = array("q")
        self.otype_codes = bytearray()
        self.amounts: "array[int]" = array("q")
        self.failure_codes: "array[int]" = array("q")
        # Per-block agent dictionary; both directions published
        # copy-on-write so concurrent readers never see a mutating dict.
        self.agents: Tuple[int, ...] = ()
        self._agent_code: Dict[int, int] = {}
        # Distinct op/otype codes this block has ever held (immutable
        # snapshots): the hot-tier generalization of the cold zone maps'
        # vacuity hoisting — a constraint the whole block satisfies (or a
        # code the block lacks) skips its per-row pass entirely.
        self.op_universe: FrozenSet[int] = frozenset()
        self.otype_universe: FrozenSet[int] = frozenset()
        self.time_sorted = True
        self.min_time: Optional[float] = None
        self.max_time: Optional[float] = None
        self.max_event_id = 0
        self.generation = next(_generations)
        self._rows: List[Optional[SystemEvent]] = []

    # -- writing -----------------------------------------------------------

    def append(self, event: SystemEvent) -> int:
        """Append one row; returns its position.  Single writer only."""
        start = event.start_time
        t0 = self.t0
        if t0 and start < t0[-1]:
            self.time_sorted = False
        agent_code = self._agent_code.get(event.agent_id)
        if agent_code is None:
            agent_code = self._add_agent(event.agent_id)
        op_code = OP_CODE[event.operation]
        if op_code not in self.op_universe:
            self.op_universe |= {op_code}
        otype_code = OTYPE_CODE[event.object_type]
        if otype_code not in self.otype_universe:
            self.otype_universe |= {otype_code}
        position = len(self.event_ids)
        self.event_ids.append(event.event_id)
        self.agent_codes.append(agent_code)
        self.seqs.append(event.seq)
        t0.append(start)
        self.t1.append(event.end_time)
        self.op_codes.append(op_code)
        self.subject_ids.append(event.subject_id)
        self.object_ids.append(event.object_id)
        self.otype_codes.append(otype_code)
        self.amounts.append(event.amount)
        self.failure_codes.append(event.failure_code)
        self._rows.append(None)
        if self.min_time is None or start < self.min_time:
            self.min_time = start
        if self.max_time is None or start > self.max_time:
            self.max_time = start
        if event.event_id > self.max_event_id:
            self.max_event_id = event.event_id
        return position

    def _add_agent(self, agent_id: int) -> int:
        code = len(self.agents)
        if code == 256 and isinstance(self.agent_codes, bytearray):
            # 257th distinct agent: promote the byte column to a wide int64
            # column — 'q' like every other int column, so the width is the
            # same on every platform ('l' is 4 bytes on some ABIs).  (list()
            # first: array('q', bytearray) would reinterpret the raw bytes
            # as machine words, not one code per row.)  The swap publishes a
            # new object; readers hold either column, both agree on every
            # published position.
            self.agent_codes = array("q", list(self.agent_codes))
        self.agents = self.agents + (agent_id,)
        mapping = dict(self._agent_code)
        mapping[agent_id] = code
        self._agent_code = mapping
        return code

    @classmethod
    def from_columns(cls, columns: Dict[str, Sequence]) -> "ColumnBlock":
        """Build a block from decoded cold-segment columns (no row objects).

        Keys follow the cold tier's storage schema
        (:data:`repro.tier.cold._COLUMNS`): op/ot arrive as enum value
        strings and are dictionary-encoded here, once per decode.
        """
        block = cls()
        block.event_ids = array("q", columns["eid"])
        block.seqs = array("q", columns["s"])
        t0 = array("d", columns["t0"])
        block.t0 = t0
        block.t1 = array("d", columns["t1"])
        block.op_codes = bytearray(
            OP_CODE_BY_VALUE[v] for v in columns["op"]
        )
        block.subject_ids = array("q", columns["subj"])
        block.object_ids = array("q", columns["obj"])
        block.otype_codes = bytearray(
            OTYPE_CODE_BY_VALUE[v] for v in columns["ot"]
        )
        block.amounts = array("q", columns["amt"])
        block.failure_codes = array("q", columns["fc"])
        agent_code: Dict[int, int] = {}
        agents: List[int] = []
        codes: List[int] = []
        for agent_id in columns["a"]:
            code = agent_code.get(agent_id)
            if code is None:
                code = agent_code[agent_id] = len(agents)
                agents.append(agent_id)
        # second pass only when the byte width fits; else a plain int column
        for agent_id in columns["a"]:
            codes.append(agent_code[agent_id])
        block.agents = tuple(agents)
        block._agent_code = agent_code
        block.agent_codes = (
            bytearray(codes) if len(agents) <= 256 else array("q", codes)
        )
        block.op_universe = frozenset(block.op_codes)
        block.otype_universe = frozenset(block.otype_codes)
        n = len(block.event_ids)
        block._rows = [None] * n
        block.time_sorted = all(t0[i] <= t0[i + 1] for i in range(n - 1))
        if n:
            block.min_time = min(t0)
            block.max_time = max(t0)
            block.max_event_id = max(block.event_ids)
        return block

    # -- materialization ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.event_ids)

    @property
    def rows_materialized(self) -> bool:
        """True when any row view has been built (a laziness test probe)."""
        return any(row is not None for row in self._rows)

    def event_at(self, position: int) -> SystemEvent:
        """The row view at ``position``, built from the columns on demand.

        A benign race may rebuild the same position twice; both results are
        equal frozen dataclasses, so whichever assignment wins is correct.
        """
        row = self._rows[position]
        if row is None:
            row = SystemEvent(
                event_id=self.event_ids[position],
                agent_id=self.agents[self.agent_codes[position]],
                seq=self.seqs[position],
                start_time=self.t0[position],
                end_time=self.t1[position],
                operation=OP_BY_CODE[self.op_codes[position]],
                subject_id=self.subject_ids[position],
                object_id=self.object_ids[position],
                object_type=OTYPE_BY_CODE[self.otype_codes[position]],
                amount=self.amounts[position],
                failure_code=self.failure_codes[position],
            )
            self._rows[position] = row
        return row

    def events_at(self, positions: Iterable[int]) -> List[SystemEvent]:
        event_at = self.event_at
        return [event_at(p) for p in positions]

    def events(self, stop: Optional[int] = None) -> List[SystemEvent]:
        """Materialize positions ``[0, stop)`` (defaults to the whole block)."""
        n = len(self.event_ids) if stop is None else stop
        return self.events_at(range(n))

    # -- columnar access helpers ------------------------------------------

    def window_bounds(
        self, start: Optional[float], end: Optional[float], stop: int
    ) -> Tuple[int, int]:
        """``[lo, hi)`` positions with ``start <= t0 < end`` among ``[0, stop)``.

        Only meaningful while :attr:`time_sorted`; callers bound the bisect
        by their visibility snapshot (``stop``) so a concurrent append that
        breaks sortedness past the snapshot cannot skew the search.
        """
        t0 = self.t0
        lo = 0 if start is None else bisect_left(t0, start, 0, stop)
        hi = stop if end is None else bisect_left(t0, end, lo, stop)
        return lo, hi

    def agent_code_set(
        self, agent_ids: FrozenSet[int]
    ) -> Optional[FrozenSet[int]]:
        """Dictionary codes matching ``agent_ids``; None when vacuous.

        Vacuous means every agent this block has seen is in the filter set,
        so the per-row pass cannot drop anything and is skipped (the hot
        analogue of the cold zone maps' agent-superset hoisting).
        """
        mapping = self._agent_code
        if all(agent in agent_ids for agent in mapping):
            return None
        return frozenset(
            code for agent, code in mapping.items() if agent in agent_ids
        )

    def order_positions(self, positions: Positions) -> List[int]:
        """Positions sorted by the result order, (start_time, event_id)."""
        t0 = self.t0
        event_ids = self.event_ids
        return sorted(positions, key=lambda p: (t0[p], event_ids[p]))


# Column-level event attribute getters, mirroring the alias table of
# SystemEvent.attribute / model.events._EVENT_ATTRIBUTE_GETTERS: the same
# names resolve to the same values, read from columns instead of a row.
_BLOCK_ATTRIBUTE_GETTERS: Dict[str, Callable[[ColumnBlock, int], object]] = {
    "id": lambda b, i: b.event_ids[i],
    "event_id": lambda b, i: b.event_ids[i],
    "agentid": lambda b, i: b.agents[b.agent_codes[i]],
    "agent_id": lambda b, i: b.agents[b.agent_codes[i]],
    "seq": lambda b, i: b.seqs[i],
    "sequence": lambda b, i: b.seqs[i],
    "starttime": lambda b, i: b.t0[i],
    "start_time": lambda b, i: b.t0[i],
    "endtime": lambda b, i: b.t1[i],
    "end_time": lambda b, i: b.t1[i],
    "optype": lambda b, i: OP_VALUE_BY_CODE[b.op_codes[i]],
    "operation": lambda b, i: OP_VALUE_BY_CODE[b.op_codes[i]],
    "amount": lambda b, i: b.amounts[i],
    "access": lambda b, i: OP_VALUE_BY_CODE[b.op_codes[i]],
    "failure_code": lambda b, i: b.failure_codes[i],
    "failurecode": lambda b, i: b.failure_codes[i],
    "subject_id": lambda b, i: b.subject_ids[i],
    "object_id": lambda b, i: b.object_ids[i],
}


def block_attribute_getter(
    name: str,
) -> Optional[Callable[[ColumnBlock, int], object]]:
    """Column getter behind ``SystemEvent.attribute(name)``, or ``None``."""
    return _BLOCK_ATTRIBUTE_GETTERS.get(name.strip().lower())


class Selection:
    """Survivor positions of one block scan, in (start_time, event_id) order."""

    __slots__ = ("block", "positions")

    def __init__(self, block: ColumnBlock, positions: Sequence[int]) -> None:
        self.block = block
        self.positions = positions

    def __len__(self) -> int:
        return len(self.positions)

    def events(self) -> List[SystemEvent]:
        return self.block.events_at(self.positions)

    def committed_only(self, watermark: int) -> "Selection":
        """Drop rows above a store's committed-event watermark.

        Cached selections must *not* bake the watermark in — it moves
        between scans (a batch publishes per partition before the store
        raises it) — so every scan applies its own snapshot here.
        """
        if self.block.max_event_id <= watermark:
            return self
        event_ids = self.block.event_ids
        return Selection(
            self.block, [p for p in self.positions if event_ids[p] <= watermark]
        )


_Handle = Tuple[float, int, ColumnBlock, int]  # (t0, event_id, block, pos)


def _norm(value: object) -> object:
    return value.lower() if isinstance(value, str) else value


class BlockScanResult:
    """A store scan as per-block selections; rows materialize on demand.

    This is what schedulers and caches pass around instead of event lists:
    ``ref_values``/``time_bounds`` answer constrained-execution narrowing
    from the columns, ``field_getter``+``handles`` feed hash-join key
    extraction, and :meth:`events` materializes the merged, (start_time,
    event_id)-sorted row list exactly once, for final results.
    """

    __slots__ = ("parts", "dedup", "completeness", "_handles", "_events")

    def __init__(self, parts: Sequence[Selection], dedup: bool = False) -> None:
        self.parts = list(parts)
        # Tiered scans can reach one event in both tiers during a
        # migration hand-off; their results dedup by event id on merge.
        self.dedup = dedup
        # Degraded sharded scans attach a ScanCompleteness annotation
        # here (missing shard ids, estimated missed rows); None means the
        # scan answered from every shard.
        self.completeness = None
        self._handles: Optional[List[_Handle]] = None
        self._events: Optional[List[SystemEvent]] = None

    def handles(self) -> List[_Handle]:
        """Merged (t0, event_id, block, position) keys, globally sorted.

        Each part is already sorted by (start_time, event_id), so timsort
        sees presorted runs; duplicates (equal (t0, id) keys from two
        tiers) collapse to their first copy when :attr:`dedup` is set.
        """
        handles = self._handles
        if handles is None:
            handles = []
            for part in self.parts:
                t0 = part.block.t0
                event_ids = part.block.event_ids
                block = part.block
                handles.extend(
                    (t0[p], event_ids[p], block, p) for p in part.positions
                )
            if len(self.parts) > 1:
                handles.sort(key=lambda h: (h[0], h[1]))
            if self.dedup and handles:
                deduped = [handles[0]]
                last = handles[0]
                for h in handles[1:]:
                    if h[0] != last[0] or h[1] != last[1]:
                        deduped.append(h)
                        last = h
                handles = deduped
            self._handles = handles
        return handles

    def __len__(self) -> int:
        return len(self.handles())

    def __iter__(self) -> Iterator[SystemEvent]:
        return iter(self.events())

    def events(self) -> List[SystemEvent]:
        events = self._events
        if events is None:
            events = [block.event_at(p) for _, _, block, p in self.handles()]
            self._events = events
        return events

    # -- columnar narrowing ------------------------------------------------

    def time_bounds(self) -> Optional[Tuple[float, float]]:
        """(min, max) start time of the survivors, from the columns."""
        tmin: Optional[float] = None
        tmax: Optional[float] = None
        for part in self.parts:
            positions = part.positions
            if not len(positions):
                continue
            t0 = part.block.t0
            first = t0[positions[0]]  # parts are (t0, id)-sorted
            last = t0[positions[-1]]
            if tmin is None or first < tmin:
                tmin = first
            if tmax is None or last > tmax:
                tmax = last
        if tmin is None or tmax is None:
            return None
        return tmin, tmax

    def ref_values(self, ref, entity_of) -> FrozenSet[object]:
        """Distinct normalized values of ``ref`` across the survivors.

        Matches :func:`repro.engine.data_query.values_of` on the
        materialized rows: entity attributes resolve once per distinct
        entity id (not once per row), event attributes read their column.
        """
        role = ref.role
        attr = ref.attr
        out: set = set()
        if role in ("subject", "object"):
            ids: set = set()
            for part in self.parts:
                col = (
                    part.block.subject_ids
                    if role == "subject"
                    else part.block.object_ids
                )
                ids.update(col[p] for p in part.positions)
            for entity_id in ids:
                out.add(_norm(getattr(entity_of(entity_id), attr)))
            return frozenset(out)
        getter = block_attribute_getter(attr)
        if getter is None:
            if any(len(part.positions) for part in self.parts):
                # same failure the row path raises on its first event
                raise AttributeError(f"event has no attribute {attr!r}")
            return frozenset()
        for part in self.parts:
            block = part.block
            out.update(_norm(getter(block, p)) for p in part.positions)
        return frozenset(out)

    def field_getter(
        self, ref, entity_of
    ) -> Optional[Callable[[_Handle], object]]:
        """Per-handle join-key extractor for ``ref``, or None if unsupported.

        Entity attributes memoize per distinct entity id; event attributes
        read columns.  ``None`` (an alias ``SystemEvent.attribute`` would
        reject) tells the caller to fall back to the row-based path, which
        raises exactly as materialized rows would.
        """
        attr = ref.attr
        if ref.role == "event":
            getter = block_attribute_getter(attr)
            if getter is None:
                return None
            return lambda h: getter(h[2], h[3])
        subject = ref.role == "subject"
        memo: Dict[int, object] = {}

        def entity_value(h: _Handle) -> object:
            block = h[2]
            entity_id = (
                block.subject_ids[h[3]] if subject else block.object_ids[h[3]]
            )
            try:
                return memo[entity_id]
            except KeyError:
                value = getattr(entity_of(entity_id), attr)
                memo[entity_id] = value
                return value

        return entity_value

    @staticmethod
    def event_of(handle: _Handle) -> SystemEvent:
        return handle[2].event_at(handle[3])
