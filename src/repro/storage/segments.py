"""MPP segmented storage (the Greenplum substrate, paper Secs. 3.2 & 6.3.3).

Greenplum distributes rows across *segments* that scan in parallel.  The
paper's key observation (Sec. 6.3.3) is that "without our semantics-aware
model, Greenplum distributes the storage of events based on their incoming
orders (which is arbitrary)", whereas the AIQL data model distributes by the
domain key so that the events of one host land evenly and queries with
spatial/temporal constraints touch fewer segments.

Two distribution policies are provided:

* ``arrival`` — round-robin on ingest order (stock Greenplum behaviour);
* ``domain``  — hash of ``(agent_id, day)`` (AIQL's semantics-aware model).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.model.entities import Entity, EntityRegistry
from repro.model.events import SystemEvent
from repro.model.time import day_of
from repro.service.pool import SharedExecutor, get_shared_executor
from repro.storage.blocks import BlockScanResult
from repro.storage.filters import EventFilter
from repro.storage.index import DEFAULT_INDEXED_ATTRIBUTES, EntityAttributeIndex
from repro.storage.kernels import kernel_for, kernels_enabled
from repro.storage.table import EventTable

DISTRIBUTION_POLICIES = ("arrival", "domain")


class SegmentedStore:
    """N-segment parallel event store."""

    def __init__(
        self,
        registry: Optional[EntityRegistry] = None,
        segments: int = 5,
        policy: str = "domain",
        indexed_attributes=None,
        executor: Optional[SharedExecutor] = None,
    ) -> None:
        if segments < 1:
            raise ValueError("segments must be >= 1")
        if policy not in DISTRIBUTION_POLICIES:
            raise ValueError(
                f"unknown distribution policy {policy!r}; "
                f"expected one of {DISTRIBUTION_POLICIES}"
            )
        self.registry = registry if registry is not None else EntityRegistry()
        self.policy = policy
        self.entity_index = EntityAttributeIndex(
            indexed_attributes or DEFAULT_INDEXED_ATTRIBUTES
        )
        self._segments: List[EventTable] = [
            EventTable(self.registry.get) for _ in range(segments)
        ]
        self._indexed_entities: set[int] = set()
        self._rr = 0
        self._executor = executor
        # Committed-event watermark (see EventStore): raised after every
        # segment of a batch published, filtered on by readers, so a batch
        # spanning segments is atomic to concurrent scans, iteration and
        # len(); _event_count is likewise bumped once per commit.
        self._committed = 0
        self._event_count = 0

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def register_entity(self, entity: Entity) -> None:
        if entity.id in self._indexed_entities:
            return
        self._indexed_entities.add(entity.id)
        self.entity_index.add(entity)

    def _segment_for(self, event: SystemEvent) -> int:
        if self.policy == "arrival":
            segment = self._rr
            self._rr = (self._rr + 1) % len(self._segments)
            return segment
        return hash((event.agent_id, day_of(event.start_time))) % len(self._segments)

    def add_event(self, event: SystemEvent) -> None:
        self._segments[self._segment_for(event)].append(event)
        self._event_count += 1
        self._committed = max(self._committed, event.event_id)

    def add_batch(self, events: Sequence[SystemEvent]) -> None:
        """Append a committed batch; each segment publishes its share once.

        Segment assignment is identical to the per-event path (round-robin
        state advances per event under ``arrival``), so a streamed ingest
        places every event exactly where a burst ingest would have.  The
        watermark moves only after every segment published, making the
        batch atomic to concurrent scans.
        """
        by_segment: Dict[int, List[SystemEvent]] = {}
        for event in events:
            by_segment.setdefault(self._segment_for(event), []).append(event)
        for segment, chunk in by_segment.items():
            self._segments[segment].append_batch(chunk)
        self._event_count += len(events)
        if events:
            self._committed = max(
                self._committed, max(e.event_id for e in events)
            )

    def remove_events(self, events: Sequence[SystemEvent]) -> int:
        """Remove committed events (the cold-migration hand-off).

        Each affected segment is rebuilt without the removed rows and
        swapped in place atomically (readers mid-scan keep the old, still
        correct, table); round-robin state is untouched, so arrival-order
        placement of future events is unaffected.  Must run on the single
        writer, serialized with appends.
        """
        ids = {e.event_id for e in events}
        removed = 0
        for index, segment in enumerate(self._segments):
            keep = [e for e in segment if e.event_id not in ids]
            dropped = len(segment) - len(keep)
            if not dropped:
                continue
            fresh = EventTable(self.registry.get)
            fresh.append_batch(keep)
            self._segments[index] = fresh
            removed += dropped
        self._event_count -= removed
        return removed

    def time_range(self):
        """(min, max) event start time over the hot segments."""
        mins = [s.min_time for s in self._segments if s.min_time is not None]
        maxs = [s.max_time for s in self._segments if s.max_time is not None]
        return (min(mins) if mins else None, max(maxs) if maxs else None)

    def _relevant_segments(self, flt: EventFilter) -> List[EventTable]:
        """Segment pruning, only possible under the domain policy.

        With domain distribution, a segment whose (agent, day) hash universe
        is disjoint from the filter's spatial/temporal constraints can be
        skipped entirely.  With arrival-order distribution every segment may
        hold matching events, so all must be scanned.
        """
        if self.policy == "arrival":
            return list(self._segments)
        days = flt.window.days()
        if flt.agent_ids is None or days is None:
            return list(self._segments)
        wanted = {
            hash((agent, day)) % len(self._segments)
            for agent in flt.agent_ids
            for day in days
        }
        return [self._segments[i] for i in sorted(wanted)]

    def scan_columns(
        self,
        flt: EventFilter,
        parallel: bool = True,
        use_entity_index: bool = True,
    ) -> BlockScanResult:
        """Survivors as per-segment selections (see ``EventStore.scan_columns``)."""
        from repro.storage.database import narrow_with_index

        committed = self._committed  # snapshot before touching any segment
        if use_entity_index:
            flt = narrow_with_index(flt, self.entity_index)
        # One compiled kernel shared by every segment scan (see EventStore).
        kernel = kernel_for(flt) if kernels_enabled() else None
        if kernel is not None and kernel.always_false:
            return BlockScanResult(())
        segments = self._relevant_segments(flt)
        if parallel and len(segments) > 1:
            if self._executor is None:
                self._executor = get_shared_executor()
            selections = self._executor.map_all(
                lambda s: s.scan_select(flt, None, kernel), segments
            )
        else:
            selections = [
                segment.scan_select(flt, None, kernel) for segment in segments
            ]
        return BlockScanResult(
            [s.committed_only(committed) for s in selections]
        )

    def scan(
        self,
        flt: EventFilter,
        parallel: bool = True,
        use_entity_index: bool = True,
    ) -> List[SystemEvent]:
        return self.scan_columns(flt, parallel, use_entity_index).events()

    def full_scan(self, flt: EventFilter) -> List[SystemEvent]:
        committed = self._committed
        matched: List[SystemEvent] = []
        for segment in self._segments:
            matched.extend(
                e for e in segment.full_scan(flt) if e.event_id <= committed
            )
        matched.sort(key=lambda e: (e.start_time, e.event_id))
        return matched

    def __len__(self) -> int:
        return self._event_count

    def __iter__(self) -> Iterator[SystemEvent]:
        committed = self._committed
        for segment in self._segments:
            for event in segment:
                if event.event_id <= committed:
                    yield event

    def segment_sizes(self) -> List[int]:
        return [len(s) for s in self._segments]

    def skew(self) -> float:
        """Max/mean segment size ratio — a balance diagnostic (1.0 = even)."""
        sizes = self.segment_sizes()
        total = sum(sizes)
        if not total:
            return 1.0
        mean = total / len(sizes)
        return max(sizes) / mean

    def stats(self) -> Dict[str, object]:
        return {
            "events": len(self),
            "entities": len(self.registry),
            "segments": self.segment_count,
            "policy": self.policy,
            "skew": round(self.skew(), 3),
        }
