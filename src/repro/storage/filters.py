"""Predicate representation shared by the storage layer and the engine.

A *data query* (one per event pattern, paper Sec. 5.1) compiles down to an
:class:`EventFilter`: attribute predicates on the subject entity, the object
entity and the event itself, plus spatial (agent) and temporal (time window)
constraints.  The storage layer uses the filter both for partition pruning
and for index selection.

String equality against a value containing ``%`` follows SQL LIKE semantics,
matching the paper's queries (``proc p2["%telnet%"]``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, FrozenSet, Optional, Sequence, Tuple

from repro.model.entities import Entity, EntityType
from repro.model.events import Operation, SystemEvent
from repro.model.time import TimeWindow

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=", "in", "not in")


@lru_cache(maxsize=512)
def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%`` wildcard) to a regex.

    Memoized: a LIKE predicate is evaluated once per candidate event, and
    recompiling the regex per row dominated LIKE-heavy scans.  The cache is
    shared process-wide (patterns are plain strings) and LRU-bounded.
    """
    parts = [re.escape(part) for part in pattern.split("%")]
    return re.compile("^" + ".*".join(parts) + "$", re.IGNORECASE)


def _coerce(actual: object, expected: object) -> object:
    """Coerce ``expected`` towards the runtime type of ``actual``.

    Query literals are untyped; comparing the string ``"4444"`` against an
    integer port must behave like a numeric comparison.
    """
    if isinstance(actual, (int, float)) and isinstance(expected, str):
        try:
            return type(actual)(expected)
        except ValueError:
            return expected
    if isinstance(actual, str) and isinstance(expected, (int, float)):
        return str(expected)
    return expected


@dataclass(frozen=True)
class AttrPredicate:
    """One comparison ``attr <op> value`` (or ``attr in (v1, v2, ...)``)."""

    attr: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")

    def _membership(self, actual: object) -> bool:
        # Scans run on pool workers; memoize via locals and publish the
        # types set before the value set (readers key off _norm_set), so a
        # concurrent reader never sees a half-initialized memo.
        normalized = getattr(self, "_norm_set", None)
        norm_types = getattr(self, "_norm_types", None)
        if normalized is None or norm_types is None:
            normalized = frozenset(
                v.lower() if isinstance(v, str) else v for v in self.value  # type: ignore[union-attr]
            )
            norm_types = frozenset(type(v) for v in normalized)
            object.__setattr__(self, "_norm_types", norm_types)
            object.__setattr__(self, "_norm_set", normalized)
        key = actual.lower() if isinstance(actual, str) else actual
        if key in normalized:
            return True
        if type(key) in norm_types:
            return False
        # fall back only for cross-type comparisons ('4444' vs 4444)
        return any(_equals(actual, v) for v in self.value)  # type: ignore[union-attr]

    @property
    def is_like(self) -> bool:
        return (
            self.op in ("=", "!=")
            and isinstance(self.value, str)
            and "%" in self.value
        )

    def matches(self, actual: object) -> bool:
        if self.op in ("in", "not in"):
            assert isinstance(self.value, (tuple, list, frozenset, set))
            # Scheduler-injected IN lists can hold thousands of join values;
            # use a memoized normalized set instead of a linear scan.
            member = self._membership(actual)
            return member if self.op == "in" else not member
        if self.is_like:
            ok = bool(like_to_regex(str(self.value)).match(str(actual)))
            return ok if self.op == "=" else not ok
        expected = _coerce(actual, self.value)
        if self.op == "=":
            return _equals(actual, expected)
        if self.op == "!=":
            return not _equals(actual, expected)
        try:
            if self.op == "<":
                return actual < expected  # type: ignore[operator]
            if self.op == "<=":
                return actual <= expected  # type: ignore[operator]
            if self.op == ">":
                return actual > expected  # type: ignore[operator]
            if self.op == ">=":
                return actual >= expected  # type: ignore[operator]
        except TypeError:
            return False
        raise AssertionError(self.op)


def _equals(actual: object, expected: object) -> bool:
    expected = _coerce(actual, expected)
    if isinstance(actual, str) and isinstance(expected, str):
        return actual.lower() == expected.lower()
    return actual == expected


# A compiled boolean combination of attribute predicates. Evaluated against
# an attribute-lookup function (entity.attribute / event.attribute).
PredicateFn = Callable[[Callable[[str], object]], bool]


@dataclass(frozen=True)
class PredicateLeaf:
    pred: AttrPredicate

    def evaluate(self, lookup: Callable[[str], object]) -> bool:
        try:
            actual = lookup(self.pred.attr)
        except AttributeError:
            return False
        return self.pred.matches(actual)

    def leaves(self) -> Tuple[AttrPredicate, ...]:
        return (self.pred,)

    def constraint_count(self) -> int:
        return 1


@dataclass(frozen=True)
class PredicateNot:
    child: "PredicateNode"

    def evaluate(self, lookup: Callable[[str], object]) -> bool:
        return not self.child.evaluate(lookup)

    def leaves(self) -> Tuple[AttrPredicate, ...]:
        return self.child.leaves()

    def constraint_count(self) -> int:
        return self.child.constraint_count()


@dataclass(frozen=True)
class PredicateAnd:
    children: Tuple["PredicateNode", ...]

    def evaluate(self, lookup: Callable[[str], object]) -> bool:
        return all(child.evaluate(lookup) for child in self.children)

    def leaves(self) -> Tuple[AttrPredicate, ...]:
        return tuple(p for child in self.children for p in child.leaves())

    def constraint_count(self) -> int:
        return sum(child.constraint_count() for child in self.children)


@dataclass(frozen=True)
class PredicateOr:
    children: Tuple["PredicateNode", ...]

    def evaluate(self, lookup: Callable[[str], object]) -> bool:
        return any(child.evaluate(lookup) for child in self.children)

    def leaves(self) -> Tuple[AttrPredicate, ...]:
        return tuple(p for child in self.children for p in child.leaves())

    def constraint_count(self) -> int:
        return sum(child.constraint_count() for child in self.children)


PredicateNode = object  # union of the four classes above


def conjoin(nodes: Sequence[PredicateNode]) -> Optional[PredicateNode]:
    """AND together predicate nodes, dropping Nones."""
    parts = tuple(n for n in nodes if n is not None)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return PredicateAnd(parts)


def top_level_equalities(node: Optional[PredicateNode]) -> Tuple[AttrPredicate, ...]:
    """Equality/IN predicates that must hold for the whole node to hold.

    These are safe to use for index lookups: a leaf under an OR or NOT is
    not necessary, but a leaf at the top of an AND chain is.  LIKE patterns
    are included (indexes scan their keyspace for them).
    """
    if node is None:
        return ()
    if isinstance(node, PredicateLeaf):
        return (node.pred,) if node.pred.op in ("=", "in") else ()
    if isinstance(node, PredicateAnd):
        return tuple(
            p for child in node.children for p in top_level_equalities(child)
        )
    return ()


# Case may only be folded where matching is case-insensitive: =/!= and
# membership go through _equals/_norm_set (lower-cased), but the ordered
# comparisons use raw string ordering.
_CASE_INSENSITIVE_OPS = frozenset({"=", "!=", "in", "not in"})


def canonical_value(value: object, fold_case: bool = True) -> object:
    """Hashable canonical form of a predicate comparison value.

    With ``fold_case`` strings fold to lower case (for the operators whose
    matching is case-insensitive); collections become sorted tuples so
    ``in`` lists compare independently of element order and container type.
    """
    if isinstance(value, str):
        return value.lower() if fold_case else value
    if isinstance(value, (tuple, list, set, frozenset)):
        return tuple(
            sorted((canonical_value(v, fold_case) for v in value), key=repr)
        )
    return value


def canonical_predicate(node: Optional[PredicateNode]) -> Optional[tuple]:
    """Hashable canonical form of a predicate tree.

    AND/OR children are sorted (conjunction and disjunction commute), so
    two filters built from the same constraints in different orders share
    one fingerprint.
    """
    if node is None:
        return None
    if isinstance(node, PredicateLeaf):
        pred = node.pred
        fold = pred.op in _CASE_INSENSITIVE_OPS
        return ("leaf", pred.attr, pred.op, canonical_value(pred.value, fold))
    if isinstance(node, PredicateNot):
        return ("not", canonical_predicate(node.child))
    assert isinstance(node, (PredicateAnd, PredicateOr))
    tag = "and" if isinstance(node, PredicateAnd) else "or"
    children = sorted(
        (canonical_predicate(child) for child in node.children), key=repr
    )
    return (tag, tuple(children))


def filter_fingerprint(flt: "EventFilter") -> tuple:
    """A hashable key identifying what ``flt`` matches.

    Two filters with equal fingerprints select the same events from the
    same table: every field that influences matching is included, in a
    canonical order-independent form.  Used as the partition-scan cache
    key and for sub-query deduplication in the query service.
    """
    return (
        tuple(sorted(flt.agent_ids)) if flt.agent_ids is not None else None,
        (flt.window.start, flt.window.end),
        tuple(sorted(op.value for op in flt.operations))
        if flt.operations is not None
        else None,
        flt.object_type.value if flt.object_type is not None else None,
        canonical_predicate(flt.subject_pred),
        canonical_predicate(flt.object_pred),
        canonical_predicate(flt.event_pred),
        tuple(sorted(flt.subject_ids)) if flt.subject_ids is not None else None,
        tuple(sorted(flt.object_ids)) if flt.object_ids is not None else None,
    )


@dataclass(frozen=True)
class EventFilter:
    """Everything a single data query constrains.

    ``subject_ids`` / ``object_ids`` / ``event_ids`` are narrowing sets
    injected by the scheduler when it executes a data query *constrained by*
    the results of a previously-executed pattern (Algorithm 1's
    ``S_j <-execute- (S_i) q_j``).
    """

    agent_ids: Optional[FrozenSet[int]] = None
    window: TimeWindow = field(default_factory=TimeWindow)
    operations: Optional[FrozenSet[Operation]] = None
    object_type: Optional[EntityType] = None
    subject_pred: Optional[PredicateNode] = None
    object_pred: Optional[PredicateNode] = None
    event_pred: Optional[PredicateNode] = None
    subject_ids: Optional[FrozenSet[int]] = None
    object_ids: Optional[FrozenSet[int]] = None

    def constraint_count(self) -> int:
        """Number of constraints — the scheduler's pruning score (Sec. 5.2)."""
        count = 0
        if self.agent_ids is not None:
            count += 1
        if self.window.start is not None or self.window.end is not None:
            count += 1
        if self.operations is not None:
            count += 1
        if self.object_type is not None:
            count += 1
        for node in (self.subject_pred, self.object_pred, self.event_pred):
            if node is not None:
                count += node.constraint_count()
        return count

    def narrowed(
        self,
        subject_ids: Optional[FrozenSet[int]] = None,
        object_ids: Optional[FrozenSet[int]] = None,
        window: Optional[TimeWindow] = None,
    ) -> "EventFilter":
        """A copy narrowed by scheduler-provided id sets / time bounds."""
        new = self
        if subject_ids is not None:
            merged = (
                subject_ids
                if new.subject_ids is None
                else new.subject_ids & subject_ids
            )
            new = replace(new, subject_ids=merged)
        if object_ids is not None:
            merged = (
                object_ids
                if new.object_ids is None
                else new.object_ids & object_ids
            )
            new = replace(new, object_ids=merged)
        if window is not None:
            new = replace(new, window=new.window.intersect(window))
        return new

    def matches(
        self,
        event: SystemEvent,
        subject: Entity,
        obj: Entity,
    ) -> bool:
        """Full check of an event (with resolved entities) against the filter."""
        if self.agent_ids is not None and event.agent_id not in self.agent_ids:
            return False
        if not self.window.contains(event.start_time):
            return False
        if self.operations is not None and event.operation not in self.operations:
            return False
        if self.object_type is not None and event.object_type is not self.object_type:
            return False
        if self.subject_ids is not None and event.subject_id not in self.subject_ids:
            return False
        if self.object_ids is not None and event.object_id not in self.object_ids:
            return False
        if self.subject_pred is not None and not self.subject_pred.evaluate(
            subject.attribute
        ):
            return False
        if self.object_pred is not None and not self.object_pred.evaluate(
            obj.attribute
        ):
            return False
        if self.event_pred is not None and not self.event_pred.evaluate(
            event.attribute
        ):
            return False
        return True
