"""Storage substrates (paper Sec. 3.2).

* :class:`~repro.storage.database.EventStore` — the AIQL-optimized store:
  (day, agent-group) partitions, attribute indexes, partition pruning,
  parallel scans.
* :class:`~repro.storage.flat.FlatStore` — the unpartitioned baseline the
  PostgreSQL/Neo4j comparisons run against.
* :class:`~repro.storage.segments.SegmentedStore` — the MPP (Greenplum)
  substrate with arrival-order vs domain distribution policies.
* :class:`~repro.storage.ingest.Ingestor` — the agent→server pipeline that
  fans identical data out to all attached stores.
"""

from repro.storage.database import EventStore
from repro.storage.filters import (
    AttrPredicate,
    EventFilter,
    PredicateAnd,
    PredicateLeaf,
    PredicateNot,
    PredicateOr,
    conjoin,
    like_to_regex,
    top_level_equalities,
)
from repro.storage.flat import FlatStore
from repro.storage.index import (
    DEFAULT_INDEXED_ATTRIBUTES,
    EntityAttributeIndex,
    HashIndex,
    SortedTimeIndex,
)
from repro.storage.ingest import IngestError, Ingestor
from repro.storage.partition import PartitionKey, PartitionScheme
from repro.storage.persist import SnapshotError, load_snapshot, save_snapshot
from repro.storage.segments import SegmentedStore
from repro.storage.table import EventTable

__all__ = [
    "AttrPredicate",
    "DEFAULT_INDEXED_ATTRIBUTES",
    "EntityAttributeIndex",
    "EventFilter",
    "EventStore",
    "EventTable",
    "FlatStore",
    "HashIndex",
    "IngestError",
    "Ingestor",
    "PartitionKey",
    "PartitionScheme",
    "PredicateAnd",
    "PredicateLeaf",
    "PredicateNot",
    "PredicateOr",
    "SegmentedStore",
    "SnapshotError",
    "SortedTimeIndex",
    "conjoin",
    "like_to_regex",
    "load_snapshot",
    "save_snapshot",
    "top_level_equalities",
]
