"""Time & space partitioning of system monitoring data (paper Sec. 3.2).

System monitoring data exhibits strong spatial and temporal properties: data
from different agents is independent, and timestamps increase monotonically.
The paper partitions storage along both dimensions — "separating groups of
agents into table partitions and generating one database per day".  We model
a partition key as ``(day ordinal, agent group)`` where agent groups bucket
``agent_id`` ranges, and support pruning the partition set given the spatial
and temporal constraints of a data query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from repro.model.time import DAY, TimeWindow, day_of


@dataclass(frozen=True)
class PartitionKey:
    """Identifies one (day, agent-group) partition."""

    day: int
    agent_group: int


class PartitionScheme:
    """Maps events to partitions and prunes partitions for queries."""

    def __init__(self, agents_per_group: int = 10) -> None:
        if agents_per_group < 1:
            raise ValueError("agents_per_group must be >= 1")
        self.agents_per_group = agents_per_group

    def group_of(self, agent_id: int) -> int:
        return agent_id // self.agents_per_group

    def key_for(self, agent_id: int, start_time: float) -> PartitionKey:
        return PartitionKey(day=day_of(start_time), agent_group=self.group_of(agent_id))

    def prune(
        self,
        keys: Iterable[PartitionKey],
        agent_ids: Optional[FrozenSet[int]],
        window: TimeWindow,
    ) -> List[PartitionKey]:
        """Partitions that can possibly contain matching events.

        Pruning is sound: a partition is dropped only if *no* event in it can
        satisfy the spatial/temporal constraints.
        """
        groups: Optional[FrozenSet[int]] = None
        if agent_ids is not None:
            groups = frozenset(self.group_of(a) for a in agent_ids)

        days = window.days()
        day_set = frozenset(days) if days is not None else None

        selected: List[PartitionKey] = []
        for key in keys:
            if groups is not None and key.agent_group not in groups:
                continue
            if day_set is not None and key.day not in day_set:
                continue
            if day_set is None and not self._day_overlaps(key.day, window):
                continue
            selected.append(key)
        selected.sort(key=lambda k: (k.day, k.agent_group))
        return selected

    @staticmethod
    def _day_overlaps(day: int, window: TimeWindow) -> bool:
        day_start = day * DAY
        day_end = day_start + DAY
        if window.start is not None and window.start >= day_end:
            return False
        if window.end is not None and window.end <= day_start:
            return False
        return True
