"""The Greenplum baseline: MPP scheduling vs AIQL scheduling (Sec. 6.3.3).

Greenplum's own scheduling runs the monolithic join with per-pattern scans
fanned out to all segments — and with arrival-order row distribution every
segment may hold matching rows, so nothing can be skipped.  AIQL's
semantics-aware model distributes by (agent, day), letting the scheduler
prune whole segments and run the relationship-based plan on top.

Both run against :class:`~repro.storage.segments.SegmentedStore`; the
difference is the distribution policy of the store plus the scheduling
strategy:

* ``greenplum_engine(store_arrival)``  — Fig. 7's "Greenplum" bars;
* ``aiql_parallel_engine(store_domain)`` — Fig. 7's "AIQL" bars.
"""

from __future__ import annotations

from repro.baselines.relational import MonolithicJoinEngine
from repro.engine.anomaly import AnomalyExecutor
from repro.engine.executor import MultieventExecutor
from repro.storage.segments import SegmentedStore


def greenplum_engine(store: SegmentedStore) -> MonolithicJoinEngine:
    """Greenplum scheduling: monolithic hash-join plan over all segments.

    Greenplum is a real parallel optimizer, so unlike single-node
    PostgreSQL it gets hash joins; what it lacks is the domain model —
    arrival distribution forces full-fleet scans for every pattern.
    """
    if store.policy != "arrival":
        raise ValueError(
            "the Greenplum baseline models arrival-order distribution; "
            f"got a store with policy {store.policy!r}"
        )
    return MonolithicJoinEngine(store, use_hash_joins=True)


def aiql_parallel_engine(store: SegmentedStore) -> MultieventExecutor:
    """AIQL scheduling over the domain-distributed segmented store."""
    if store.policy != "domain":
        raise ValueError(
            "AIQL's parallel engine expects the semantics-aware (domain) "
            f"distribution; got {store.policy!r}"
        )
    return MultieventExecutor(store, scheduling="relationship", parallel=True)


def aiql_parallel_anomaly_engine(store: SegmentedStore) -> AnomalyExecutor:
    if store.policy != "domain":
        raise ValueError(
            "AIQL's parallel engine expects the semantics-aware (domain) "
            f"distribution; got {store.policy!r}"
        )
    return AnomalyExecutor(store, scheduling="relationship", parallel=True)
