"""The PostgreSQL baseline: one big semantics-agnostic join (Sec. 6.2.2).

The paper's PostgreSQL comparison stores the same data with the same schema
and indexes, but executes each investigation query as one large SQL
statement: "by weaving all these join and filtering constraints together,
the engine could generate a large SQL with many constraints mixed together.
Such strategy suffers from indeterministic optimizations due to the large
number of constraints and often causes the execution to last for minutes or
even hours."

:class:`MonolithicJoinEngine` reproduces that execution model:

* one scan per event pattern, *in the order the query was written* — no
  pruning-power reordering;
* no constrained execution: every scan sees only the pattern's own
  predicates (a generic planner does not feed one pattern's bindings into
  another's index scan the way Algorithm 1 does);
* left-deep nested-loop joins, applying relationship predicates only once
  both sides are bound — the shape a generic optimizer degrades to when
  the constraint soup defeats its cost model;
* no attribute-hash assistance for the LIKE predicates: nearly every
  investigation constraint is a leading-wildcard pattern
  (``exe_name LIKE '%cmd.exe'``), which a B-tree index cannot serve, so
  stock engines sequential-scan each ``events`` alias (time index and, on
  the optimized store, partition pruning still apply — those model the
  B-tree on ``start_time`` that PostgreSQL *can* use).

Run it over a :class:`~repro.storage.flat.FlatStore` for the end-to-end
setting (no storage optimizations, Table 3 / Fig. 5) or over the optimized
:class:`~repro.storage.database.EventStore` for the scheduling-only
comparison (Fig. 6).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.engine.data_query import DataQuery
from repro.engine.executor import evaluate_returns
from repro.engine.result import ResultSet
from repro.engine.scheduler import SchedulerStats
from repro.engine.tuples import TupleSet
from repro.lang.context import QueryContext, ResolvedAttrRel, ResolvedTempRel


class MonolithicJoinEngine:
    """Executes a QueryContext as one big written-order nested-loop join."""

    def __init__(
        self,
        store,
        use_hash_joins: bool = False,
        index_assisted: bool = False,
    ) -> None:
        self.store = store
        self.use_hash_joins = use_hash_joins
        self.index_assisted = index_assisted
        self.last_stats: SchedulerStats = SchedulerStats()

    def _entity_of(self, entity_id: int):
        return self.store.registry.get(entity_id)

    def run(self, ctx: QueryContext) -> ResultSet:
        tuples = self.join(ctx)
        return evaluate_returns(ctx, tuples, self.store.registry.get)

    def join(self, ctx: QueryContext) -> TupleSet:
        stats = SchedulerStats()
        self.last_stats = stats

        # fetch every pattern independently, in written order
        fetched: List[Tuple[int, List]] = []
        for pattern in ctx.patterns:
            events = DataQuery.for_pattern(pattern).execute(
                self.store, use_entity_index=self.index_assisted
            )
            stats.data_queries_executed += 1
            stats.events_fetched += len(events)
            stats.order.append(pattern.index)
            fetched.append((pattern.index, events))

        # left-deep join in written order
        current = TupleSet.from_events(fetched[0][0], fetched[0][1])
        bound = {fetched[0][0]}
        for index, events in fetched[1:]:
            bound.add(index)
            attr_rels = [
                r
                for r in ctx.attr_relationships
                if {r.left.pattern, r.right.pattern} <= bound
                and index in (r.left.pattern, r.right.pattern)
            ]
            temp_rels = [
                r
                for r in ctx.temp_relationships
                if {r.left, r.right} <= bound and index in (r.left, r.right)
            ]
            right = TupleSet.from_events(index, events)
            if self.use_hash_joins:
                current = current.join(
                    right, attr_rels, temp_rels, self._entity_of
                )
            else:
                current = self._nested_loop_join(
                    current, right, attr_rels, temp_rels
                )
            stats.rows_joined += len(current)
        # safety: re-check every relationship on the final rows
        attr_rels = [
            r
            for r in ctx.attr_relationships
            if {r.left.pattern, r.right.pattern} <= bound
        ]
        temp_rels = [
            r for r in ctx.temp_relationships if {r.left, r.right} <= bound
        ]
        return current.filter(attr_rels, temp_rels, self._entity_of)

    def _nested_loop_join(
        self,
        left: TupleSet,
        right: TupleSet,
        attr_rels: Sequence[ResolvedAttrRel],
        temp_rels: Sequence[ResolvedTempRel],
    ) -> TupleSet:
        """Pure nested loop: every pair is materialized and then filtered."""
        combined_patterns = tuple(sorted(left.patterns + right.patterns))
        rows = []
        for lrow in left.rows:
            mapping: Dict[int, object] = dict(zip(left.patterns, lrow))
            for rrow in right.rows:
                mapping.update(zip(right.patterns, rrow))
                rows.append(tuple(mapping[p] for p in combined_patterns))
        joined = TupleSet(patterns=combined_patterns, rows=rows)
        return joined.filter(attr_rels, temp_rels, self._entity_of)
