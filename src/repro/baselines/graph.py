"""The Neo4j baseline: property-graph storage + Cypher-style path matching.

"Neo4j databases are configured by importing system entities as nodes and
system events as relationships" (Sec. 6.1).  The paper observes that graph
databases chain constraints along paths well but "lack efficient support
for joins": when two event patterns share no entity, the match degenerates
to enumerating the cartesian product of their candidate edge sets, and even
connected patterns are expanded edge-by-edge via adjacency rather than
set-oriented hash joins.  That is exactly how :class:`GraphEngine` executes:

* one node per entity, one directed edge per event;
* backtracking pattern match in written order — a bound shared entity
  restricts candidates to its adjacency lists; an unconnected pattern
  re-scans all edges;
* temporal relationships are checked as WHERE-style post-filters on each
  full binding (Cypher has no native event-order pruning).

Results are identical to the AIQL engine's (a test invariant); only the
execution strategy — and therefore the cost — differs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.executor import evaluate_returns
from repro.engine.result import ResultSet
from repro.engine.scheduler import SchedulerStats
from repro.engine.tuples import TupleSet
from repro.lang.context import PatternContext, QueryContext
from repro.model.entities import EntityRegistry
from repro.model.events import SystemEvent


class GraphStore:
    """Entities as nodes, events as edges (adjacency-list property graph)."""

    def __init__(self, registry: EntityRegistry) -> None:
        self.registry = registry
        self.edges: List[SystemEvent] = []
        self.out_edges: Dict[int, List[int]] = defaultdict(list)
        self.in_edges: Dict[int, List[int]] = defaultdict(list)

    @classmethod
    def from_events(
        cls, registry: EntityRegistry, events: Iterable[SystemEvent]
    ) -> "GraphStore":
        store = cls(registry)
        for event in events:
            store.add_event(event)
        return store

    def add_event(self, event: SystemEvent) -> None:
        position = len(self.edges)
        self.edges.append(event)
        self.out_edges[event.subject_id].append(position)
        self.in_edges[event.object_id].append(position)

    def __len__(self) -> int:
        return len(self.edges)


class GraphEngine:
    """Cypher-style backtracking matcher over a :class:`GraphStore`."""

    def __init__(self, graph: GraphStore) -> None:
        self.graph = graph
        self.last_stats = SchedulerStats()

    def _entity_of(self, entity_id: int):
        return self.graph.registry.get(entity_id)

    # -- public API ------------------------------------------------------------

    def run(self, ctx: QueryContext) -> ResultSet:
        tuples = self.match(ctx)
        return evaluate_returns(ctx, tuples, self.graph.registry.get)

    def match(self, ctx: QueryContext) -> TupleSet:
        self.last_stats = SchedulerStats()
        rows: List[Tuple[SystemEvent, ...]] = []
        binding: Dict[int, SystemEvent] = {}

        # entity-sharing map: pattern -> [(role, other_pattern, other_role)]
        shares = self._entity_shares(ctx)

        order = [p.index for p in ctx.patterns]  # written order, like Cypher

        def backtrack(depth: int) -> None:
            if depth == len(order):
                row = tuple(binding[i] for i in sorted(binding))
                rows.append(row)
                return
            index = order[depth]
            pattern = ctx.patterns[index]
            for event in self._candidates(pattern, shares, binding):
                binding[index] = event
                if self._consistent(ctx, binding, index):
                    backtrack(depth + 1)
                del binding[index]

        backtrack(0)
        patterns = tuple(sorted(p.index for p in ctx.patterns))
        tuples = TupleSet(patterns=patterns, rows=rows)
        # temporal relationships: post-filter, Cypher-WHERE style
        return tuples.filter((), ctx.temp_relationships, self._entity_of)

    # -- matching internals ------------------------------------------------------

    def _entity_shares(self, ctx: QueryContext):
        """Equality-on-id relationships = shared path nodes."""
        shares: Dict[int, List[tuple]] = defaultdict(list)
        for rel in ctx.attr_relationships:
            if not (rel.is_equality and rel.left.attr == "id" and rel.right.attr == "id"):
                continue
            shares[rel.left.pattern].append(
                (rel.left.role, rel.right.pattern, rel.right.role)
            )
            shares[rel.right.pattern].append(
                (rel.right.role, rel.left.pattern, rel.left.role)
            )
        return shares

    def _candidates(
        self,
        pattern: PatternContext,
        shares,
        binding: Dict[int, SystemEvent],
    ) -> Iterable[SystemEvent]:
        """Candidate edges for one pattern given current bindings.

        Adjacency expansion when a shared entity is already bound; full edge
        scan otherwise (the join weakness the paper measures).
        """
        positions: Optional[Sequence[int]] = None
        for role, other_pattern, other_role in shares.get(pattern.index, ()):
            if other_pattern not in binding:
                continue
            bound_event = binding[other_pattern]
            entity_id = (
                bound_event.subject_id
                if other_role == "subject"
                else bound_event.object_id
            )
            adjacency = (
                self.graph.out_edges if role == "subject" else self.graph.in_edges
            )
            positions = adjacency.get(entity_id, ())
            break
        if positions is None:
            positions = range(len(self.graph.edges))

        flt = pattern.filter
        entity_of = self._entity_of
        matched = []
        for position in positions:
            event = self.graph.edges[position]
            self.last_stats.events_fetched += 1
            if flt.matches(
                event, entity_of(event.subject_id), entity_of(event.object_id)
            ):
                matched.append(event)
        return matched

    def _consistent(
        self, ctx: QueryContext, binding: Dict[int, SystemEvent], new_index: int
    ) -> bool:
        """Check attribute relationships touching the newly bound pattern."""
        for rel in ctx.attr_relationships:
            a, b = rel.left.pattern, rel.right.pattern
            if new_index not in (a, b):
                continue
            if a not in binding or b not in binding:
                continue
            left = rel.left.extract(binding[a], self._entity_of)
            right = rel.right.extract(binding[b], self._entity_of)
            from repro.storage.filters import AttrPredicate

            if not AttrPredicate(attr=rel.left.attr, op=rel.op, value=right).matches(
                left
            ):
                return False
        return True
