"""Conciseness metrics (paper Sec. 6.4, Fig. 8, Table 5).

Three metrics per query and language: the number of query constraints, the
number of words, and the number of characters excluding spaces.  AIQL
constraints are counted on the AST (every attribute comparison, operation
leaf, global constraint and event relationship the analyst had to write);
SQL/Cypher/SPL constraints are counted during generation in
:mod:`repro.baselines.translators`.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, List, Optional, Tuple

from repro.baselines.translators import (
    TranslatedQuery,
    to_cypher,
    to_spl,
    to_sql,
)
from repro.engine.dependency import compile_dependency
from repro.lang import ast
from repro.lang.context import QueryContext, compile_multievent
from repro.lang.parser import parse

LANGUAGES = ("aiql", "sql", "cypher", "spl")


@dataclass(frozen=True)
class ConcisenessRow:
    qid: str
    language: str
    constraints: int
    words: int
    characters: int


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        if "//" in line:
            line = line.split("//", 1)[0]
        lines.append(line)
    return "\n".join(lines).strip()


def text_metrics(text: str) -> Tuple[int, int]:
    """(words, characters-excluding-spaces) of a query text."""
    cleaned = _strip_comments(text)
    words = len(cleaned.split())
    characters = sum(1 for ch in cleaned if not ch.isspace())
    return words, characters


# -- AIQL constraint counting (on the AST, i.e. what the analyst wrote) ------


def _count_cstr(node: Optional[ast.CstrNode]) -> int:
    if node is None:
        return 0
    if isinstance(node, ast.CstrLeaf):
        return 1
    if isinstance(node, ast.CstrNot):
        return _count_cstr(node.child)
    if isinstance(node, (ast.CstrAnd, ast.CstrOr)):
        return _count_cstr(node.left) + _count_cstr(node.right)
    raise AssertionError(node)


def _count_op(node: ast.OpNode) -> int:
    if isinstance(node, ast.OpLeaf):
        return 1
    if isinstance(node, ast.OpNot):
        return _count_op(node.child)
    if isinstance(node, (ast.OpAnd, ast.OpOr)):
        return _count_op(node.left) + _count_op(node.right)
    raise AssertionError(node)


def count_aiql_constraints(tree: ast.Query) -> int:
    """Constraints the analyst wrote: globals + patterns + relationships."""
    count = 0
    for item in tree.globals:
        if isinstance(item, ast.GlobalConstraint):
            count += 1
        elif isinstance(item, ast.TimeWindowSpec):
            count += 1
        elif isinstance(item, ast.SlidingWindowSpec):
            count += 2  # window = ..., step = ...
    if isinstance(tree, ast.MultieventQuery):
        for pattern in tree.patterns:
            count += _count_op(pattern.operation)
            count += _count_cstr(pattern.subject.constraints)
            count += _count_cstr(pattern.object.constraints)
            count += _count_cstr(pattern.event_constraints)
            if pattern.window is not None:
                count += 1
        count += len(tree.relationships)
        filters = tree.filters
    else:
        for node in tree.nodes:
            count += _count_cstr(node.constraints)
        for edge in tree.edges:
            count += _count_op(edge.operation)
        if tree.direction:
            count += 1  # the forward/backward ordering constraint
        filters = tree.filters
    if filters.having is not None:
        count += 1
    return count


# -- per-query comparison -----------------------------------------------------


def _compile(tree: ast.Query) -> QueryContext:
    if isinstance(tree, ast.DependencyQuery):
        return compile_dependency(tree)
    return compile_multievent(tree)


def translate_all(text: str) -> Dict[str, TranslatedQuery]:
    """AIQL source -> {language: TranslatedQuery} for all four languages."""
    tree = parse(text)
    ctx = _compile(tree)
    cleaned = _strip_comments(text)
    aiql = TranslatedQuery(
        language="aiql",
        text=cleaned,
        constraints=count_aiql_constraints(tree),
    )
    return {
        "aiql": aiql,
        "sql": to_sql(ctx),
        "cypher": to_cypher(ctx),
        "spl": to_spl(ctx),
    }


def compare(qid: str, text: str) -> List[ConcisenessRow]:
    rows = []
    for language, translated in translate_all(text).items():
        words, characters = text_metrics(translated.text)
        rows.append(
            ConcisenessRow(
                qid=qid,
                language=language,
                constraints=translated.constraints,
                words=words,
                characters=characters,
            )
        )
    return rows


def improvement_table(rows: List[ConcisenessRow]) -> Dict[str, Dict[str, float]]:
    """Average AIQL-relative ratios per language (the paper's Table 5)."""
    by_query: Dict[str, Dict[str, ConcisenessRow]] = {}
    for row in rows:
        by_query.setdefault(row.qid, {})[row.language] = row
    out: Dict[str, Dict[str, float]] = {}
    for language in ("sql", "cypher", "spl"):
        ratios = {"constraints": [], "words": [], "characters": []}
        for per_lang in by_query.values():
            if language not in per_lang or "aiql" not in per_lang:
                continue
            base = per_lang["aiql"]
            other = per_lang[language]
            if base.constraints:
                ratios["constraints"].append(other.constraints / base.constraints)
            if base.words:
                ratios["words"].append(other.words / base.words)
            if base.characters:
                ratios["characters"].append(other.characters / base.characters)
        out[language] = {
            metric: round(mean(values), 2) if values else float("nan")
            for metric, values in ratios.items()
        }
    return out
