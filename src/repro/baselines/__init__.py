"""Baseline query systems the paper compares against (Sec. 6).

* :mod:`repro.baselines.relational` — PostgreSQL: one big written-order
  nested-loop join;
* :mod:`repro.baselines.graph` — Neo4j: property graph + Cypher-style
  backtracking path matching;
* :mod:`repro.baselines.mpp` — Greenplum scheduling vs AIQL parallel
  scheduling over the segmented store;
* :mod:`repro.baselines.translators` — semantically equivalent SQL /
  Cypher / SPL query generation;
* :mod:`repro.baselines.conciseness` — the Sec. 6.4 metrics.
"""

from repro.baselines.conciseness import (
    ConcisenessRow,
    LANGUAGES,
    compare,
    count_aiql_constraints,
    improvement_table,
    text_metrics,
    translate_all,
)
from repro.baselines.graph import GraphEngine, GraphStore
from repro.baselines.mpp import (
    aiql_parallel_anomaly_engine,
    aiql_parallel_engine,
    greenplum_engine,
)
from repro.baselines.relational import MonolithicJoinEngine
from repro.baselines.translators import (
    TranslatedQuery,
    to_cypher,
    to_spl,
    to_sql,
)

__all__ = [
    "ConcisenessRow",
    "GraphEngine",
    "GraphStore",
    "LANGUAGES",
    "MonolithicJoinEngine",
    "TranslatedQuery",
    "aiql_parallel_anomaly_engine",
    "aiql_parallel_engine",
    "compare",
    "count_aiql_constraints",
    "greenplum_engine",
    "improvement_table",
    "text_metrics",
    "to_cypher",
    "to_spl",
    "to_sql",
    "translate_all",
]
