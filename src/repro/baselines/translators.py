"""Equivalent SQL / Neo4j Cypher / Splunk SPL query generation (Sec. 6.4).

"For each AIQL query (except anomaly queries), we construct semantically
equivalent SQL, Cypher, and Splunk SPL queries."  Rather than hand-writing
57 texts, we *derive* each equivalent from the compiled
:class:`~repro.lang.context.QueryContext` — equivalence by construction.
Each generator also returns its constraint count (every comparison
predicate it emits), the metric of Fig. 8(a).

The generated queries exhibit exactly the verbosity sources the paper
describes: SQL repeats the spatial/temporal constraints for every ``events``
alias and spells out two join ON-clauses per pattern; Cypher reuses path
nodes (so it is somewhat terser than SQL) but still repeats event-level
constraints; SPL needs one ``join`` subsearch per additional pattern plus
``where`` clauses for temporal order.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang.context import QueryContext, ResolvedReturnItem
from repro.lang.errors import AIQLSemanticError
from repro.model.entities import EntityType
from repro.storage.filters import (
    PredicateAnd,
    PredicateLeaf,
    PredicateNot,
    PredicateOr,
)

_TABLE_BY_TYPE = {
    EntityType.PROCESS: "processes",
    EntityType.FILE: "files",
    EntityType.NETWORK: "connections",
    EntityType.REGISTRY: "registry_values",
    EntityType.PIPE: "pipes",
}
_LABEL_BY_TYPE = {
    EntityType.PROCESS: "Process",
    EntityType.FILE: "File",
    EntityType.NETWORK: "Connection",
    EntityType.REGISTRY: "RegistryValue",
    EntityType.PIPE: "Pipe",
}


@dataclass(frozen=True)
class TranslatedQuery:
    language: str
    text: str
    constraints: int

    @property
    def words(self) -> int:
        return len(self.text.split())

    @property
    def characters(self) -> int:
        return sum(1 for ch in self.text if not ch.isspace())


def _ts_literal(ts: float) -> str:
    return _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc).strftime(
        "%Y-%m-%d %H:%M:%S"
    )


def _sql_value(value: object) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class _PredicateRenderer:
    """Renders storage predicate trees into a target syntax, counting leaves."""

    def __init__(self, render_leaf) -> None:
        self.render_leaf = render_leaf
        self.count = 0

    def render(self, node, alias: str) -> str:
        if isinstance(node, PredicateLeaf):
            self.count += 1
            return self.render_leaf(alias, node.pred)
        if isinstance(node, PredicateNot):
            return f"NOT ({self.render(node.child, alias)})"
        if isinstance(node, PredicateAnd):
            return (
                "("
                + " AND ".join(self.render(c, alias) for c in node.children)
                + ")"
            )
        if isinstance(node, PredicateOr):
            return (
                "("
                + " OR ".join(self.render(c, alias) for c in node.children)
                + ")"
            )
        raise AssertionError(node)


def _sql_leaf(alias: str, pred) -> str:
    column = f"{alias}.{pred.attr}"
    if pred.op == "in":
        return f"{column} IN ({', '.join(_sql_value(v) for v in pred.value)})"
    if pred.op == "not in":
        return f"{column} NOT IN ({', '.join(_sql_value(v) for v in pred.value)})"
    if pred.is_like:
        keyword = "LIKE" if pred.op == "=" else "NOT LIKE"
        return f"{column} {keyword} {_sql_value(pred.value)}"
    op = {"=": "=", "!=": "<>"}.get(pred.op, pred.op)
    return f"{column} {op} {_sql_value(pred.value)}"


# ---------------------------------------------------------------------------
# SQL
# ---------------------------------------------------------------------------


def _check_translatable(ctx: QueryContext, language: str) -> None:
    if ctx.kind == "anomaly":
        raise AIQLSemanticError(
            f"{language} cannot express sliding windows with history states "
            "(the paper omits s5/s6 for this reason)"
        )


def _ref_sql(ref, ctx: QueryContext) -> str:
    i = ref.pattern + 1
    if ref.role == "event":
        attr = {"optype": "optype", "amount": "amount"}.get(ref.attr, ref.attr)
        return f"e{i}.{attr}"
    alias = f"s{i}" if ref.role == "subject" else f"o{i}"
    return f"{alias}.{ref.attr}"


def _return_sql(item: ResolvedReturnItem, ctx: QueryContext) -> str:
    base = _ref_sql(item.ref, ctx)
    if item.is_aggregate:
        inner = f"DISTINCT {base}" if item.distinct else base
        base = f"{item.func.upper()}({inner})"
    return f"{base} AS {item.label}"


def to_sql(ctx: QueryContext) -> TranslatedQuery:
    """Generate the equivalent single-statement SQL query."""
    _check_translatable(ctx, "SQL")
    constraints = 0
    from_parts: List[str] = []
    where: List[str] = []

    for pattern in ctx.patterns:
        i = pattern.index + 1
        flt = pattern.filter
        subj_table = _TABLE_BY_TYPE[EntityType.PROCESS]
        obj_table = _TABLE_BY_TYPE[pattern.object_type]
        from_parts.append(
            f"events e{i} "
            f"JOIN {subj_table} s{i} ON e{i}.subject_id = s{i}.id "
            f"JOIN {obj_table} o{i} ON e{i}.object_id = o{i}.id"
        )
        constraints += 2  # the two join ON equalities
        if flt.agent_ids is not None:
            agents = sorted(flt.agent_ids)
            if len(agents) == 1:
                where.append(f"e{i}.agent_id = {agents[0]}")
            else:
                where.append(
                    f"e{i}.agent_id IN ({', '.join(str(a) for a in agents)})"
                )
            constraints += 1
        if flt.window.start is not None:
            where.append(f"e{i}.start_time >= '{_ts_literal(flt.window.start)}'")
            constraints += 1
        if flt.window.end is not None:
            where.append(f"e{i}.start_time < '{_ts_literal(flt.window.end)}'")
            constraints += 1
        if flt.operations is not None:
            ops = sorted(op.value for op in flt.operations)
            if len(ops) == 1:
                where.append(f"e{i}.optype = '{ops[0]}'")
            else:
                quoted = ", ".join(f"'{op}'" for op in ops)
                where.append(f"e{i}.optype IN ({quoted})")
            constraints += 1
        for node, alias in (
            (flt.subject_pred, f"s{i}"),
            (flt.object_pred, f"o{i}"),
            (flt.event_pred, f"e{i}"),
        ):
            if node is None:
                continue
            renderer = _PredicateRenderer(_sql_leaf)
            where.append(renderer.render(node, alias))
            constraints += renderer.count

    for rel in ctx.attr_relationships:
        where.append(f"{_ref_sql(rel.left, ctx)} {rel.op} {_ref_sql(rel.right, ctx)}")
        constraints += 1
    for rel in ctx.temp_relationships:
        li, ri = rel.left + 1, rel.right + 1
        if rel.kind == "before":
            where.append(f"e{li}.start_time < e{ri}.start_time")
        elif rel.kind == "after":
            where.append(f"e{li}.start_time > e{ri}.start_time")
        else:
            where.append(
                f"ABS(e{li}.start_time - e{ri}.start_time) <= {rel.high or 0}"
            )
        constraints += 1
        if rel.low:
            where.append(
                f"ABS(e{li}.start_time - e{ri}.start_time) >= {rel.low}"
            )
            constraints += 1
        if rel.high is not None and rel.kind != "within":
            where.append(
                f"ABS(e{li}.start_time - e{ri}.start_time) <= {rel.high}"
            )
            constraints += 1

    select_items = ", ".join(_return_sql(item, ctx) for item in ctx.return_items)
    distinct = "DISTINCT " if ctx.return_distinct else ""
    if ctx.return_count:
        select = f"SELECT COUNT({distinct or ''}*) FROM (SELECT {select_items}"
    else:
        select = f"SELECT {distinct}{select_items}"

    text = select + "\nFROM " + ",\n     ".join(from_parts)
    if where:
        text += "\nWHERE " + "\n  AND ".join(where)
    if ctx.group_by:
        text += "\nGROUP BY " + ", ".join(
            _ref_sql(item.ref, ctx) for item in ctx.group_by
        )
    if ctx.having is not None:
        from repro.lang.formatter import format_expr

        text += "\nHAVING " + format_expr(ctx.having)
        constraints += 1
    if ctx.sort is not None:
        direction = " DESC" if ctx.sort.descending else ""
        text += "\nORDER BY " + ", ".join(ctx.sort.attrs) + direction
    if ctx.top is not None:
        text += f"\nLIMIT {ctx.top}"
    if ctx.return_count:
        text += ") sub"
    return TranslatedQuery(language="sql", text=text, constraints=constraints)


# ---------------------------------------------------------------------------
# Cypher
# ---------------------------------------------------------------------------


def _cypher_value(value: object) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "\\'") + "'"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _cypher_leaf(alias: str, pred) -> str:
    column = f"{alias}.{pred.attr}"
    if pred.op == "in":
        return f"{column} IN [{', '.join(_cypher_value(v) for v in pred.value)}]"
    if pred.op == "not in":
        return f"NOT {column} IN [{', '.join(_cypher_value(v) for v in pred.value)}]"
    if pred.is_like:
        regex = ".*".join(
            part.replace("\\", "\\\\").replace(".", "\\.")
            for part in str(pred.value).split("%")
        )
        expr = f"{column} =~ '(?i){regex}'"
        return expr if pred.op == "=" else f"NOT ({expr})"
    op = {"=": "=", "!=": "<>"}.get(pred.op, pred.op)
    return f"{column} {op} {_cypher_value(pred.value)}"


def to_cypher(ctx: QueryContext) -> TranslatedQuery:
    """Generate the equivalent Cypher query.

    Entity reuse maps to node-variable reuse in the MATCH clause, so the
    implicit ``id = id`` joins cost nothing — that is why Cypher comes out
    terser than SQL in Fig. 8, while still behind AIQL.
    """
    _check_translatable(ctx, "Cypher")
    constraints = 0
    match_parts: List[str] = []
    where: List[str] = []
    seen_vars: Dict[str, str] = {}

    def node(name: str, etype: EntityType) -> str:
        if name in seen_vars:
            return f"({name})"
        seen_vars[name] = name
        return f"({name}:{_LABEL_BY_TYPE[etype]})"

    for pattern in ctx.patterns:
        i = pattern.index + 1
        flt = pattern.filter
        subject = node(pattern.subject_name, EntityType.PROCESS)
        obj = node(pattern.object_name, pattern.object_type)
        match_parts.append(f"{subject}-[{pattern.event_name}:EVENT]->{obj}")
        evt = pattern.event_name
        if flt.agent_ids is not None:
            agents = sorted(flt.agent_ids)
            if len(agents) == 1:
                where.append(f"{evt}.agent_id = {agents[0]}")
            else:
                where.append(f"{evt}.agent_id IN {agents}")
            constraints += 1
        if flt.window.start is not None:
            where.append(f"{evt}.start_time >= '{_ts_literal(flt.window.start)}'")
            constraints += 1
        if flt.window.end is not None:
            where.append(f"{evt}.start_time < '{_ts_literal(flt.window.end)}'")
            constraints += 1
        if flt.operations is not None:
            ops = sorted(op.value for op in flt.operations)
            if len(ops) == 1:
                where.append(f"{evt}.optype = '{ops[0]}'")
            else:
                where.append(f"{evt}.optype IN {ops}")
            constraints += 1
        for pred_node, alias in (
            (flt.subject_pred, pattern.subject_name),
            (flt.object_pred, pattern.object_name),
            (flt.event_pred, evt),
        ):
            if pred_node is None:
                continue
            renderer = _PredicateRenderer(_cypher_leaf)
            where.append(renderer.render(pred_node, alias))
            constraints += renderer.count

    name_of = _entity_names(ctx)
    for rel in ctx.attr_relationships:
        if rel.is_equality and rel.left.attr == "id" and rel.right.attr == "id":
            continue  # expressed by node-variable reuse in MATCH
        left = f"{name_of[(rel.left.pattern, rel.left.role)]}.{rel.left.attr}"
        right = f"{name_of[(rel.right.pattern, rel.right.role)]}.{rel.right.attr}"
        where.append(f"{left} {rel.op} {right}")
        constraints += 1
    for rel in ctx.temp_relationships:
        le = ctx.patterns[rel.left].event_name
        re_ = ctx.patterns[rel.right].event_name
        if rel.kind == "before":
            where.append(f"{le}.start_time < {re_}.start_time")
        elif rel.kind == "after":
            where.append(f"{le}.start_time > {re_}.start_time")
        else:
            where.append(
                f"abs({le}.start_time - {re_}.start_time) <= {rel.high or 0}"
            )
        constraints += 1

    def ret_expr(item: ResolvedReturnItem) -> str:
        if item.ref.role == "event":
            base = f"{ctx.patterns[item.ref.pattern].event_name}.{item.ref.attr}"
        else:
            base = f"{name_of[(item.ref.pattern, item.ref.role)]}.{item.ref.attr}"
        if item.is_aggregate:
            inner = f"DISTINCT {base}" if item.distinct else base
            base = f"{item.func}({inner})"
        return f"{base} AS {item.label}"

    text = "MATCH " + ",\n      ".join(match_parts)
    if where:
        text += "\nWHERE " + "\n  AND ".join(where)
    distinct = "DISTINCT " if ctx.return_distinct else ""
    text += "\nRETURN " + distinct + ", ".join(
        ret_expr(item) for item in ctx.return_items
    )
    if ctx.sort is not None:
        direction = " DESC" if ctx.sort.descending else ""
        text += "\nORDER BY " + ", ".join(ctx.sort.attrs) + direction
    if ctx.top is not None:
        text += f"\nLIMIT {ctx.top}"
    return TranslatedQuery(language="cypher", text=text, constraints=constraints)


def _entity_names(ctx: QueryContext) -> Dict[Tuple[int, str], str]:
    return {
        **{(p.index, "subject"): p.subject_name for p in ctx.patterns},
        **{(p.index, "object"): p.object_name for p in ctx.patterns},
    }


# ---------------------------------------------------------------------------
# Splunk SPL
# ---------------------------------------------------------------------------


def _spl_terms(pattern, ctx: QueryContext) -> Tuple[List[str], int]:
    """Flat field=value search terms for one pattern (SPL's flattened schema:
    subject_* / object_* fields on each event record)."""
    flt = pattern.filter
    terms: List[str] = []
    count = 0
    if flt.agent_ids is not None:
        agents = sorted(flt.agent_ids)
        if len(agents) == 1:
            terms.append(f"agent_id={agents[0]}")
        else:
            terms.append(
                "(" + " OR ".join(f"agent_id={a}" for a in agents) + ")"
            )
        count += 1
    if flt.window.start is not None:
        terms.append(f'earliest="{_ts_literal(flt.window.start)}"')
        count += 1
    if flt.window.end is not None:
        terms.append(f'latest="{_ts_literal(flt.window.end)}"')
        count += 1
    if flt.operations is not None:
        ops = sorted(op.value for op in flt.operations)
        if len(ops) == 1:
            terms.append(f"optype={ops[0]}")
        else:
            terms.append("(" + " OR ".join(f"optype={o}" for o in ops) + ")")
        count += 1

    def leaf(prefix: str, pred) -> str:
        field = f"{prefix}{pred.attr}"
        if pred.op == "in":
            return (
                "("
                + " OR ".join(
                    f'{field}="{v}"' for v in pred.value
                )
                + ")"
            )
        if pred.is_like:
            value = str(pred.value).replace("%", "*")
            return f'{field}="{value}"'
        if pred.op in ("=", "!="):
            negate = "NOT " if pred.op == "!=" else ""
            return f'{negate}{field}="{pred.value}"'
        return f"{field}{pred.op}{pred.value}"

    for node, prefix in (
        (flt.subject_pred, "subject_"),
        (flt.object_pred, "object_"),
        (flt.event_pred, ""),
    ):
        if node is None:
            continue
        renderer = _PredicateRenderer(lambda alias, p: leaf(alias, p))
        terms.append(renderer.render(node, prefix))
        count += renderer.count
    return terms, count


def to_spl(ctx: QueryContext) -> TranslatedQuery:
    """Generate the equivalent Splunk SPL pipeline.

    Multi-pattern behaviors need one ``join`` subsearch per additional
    pattern (Splunk's limited join support, which the paper cites), field
    renames to keep per-pattern values apart, and ``where`` clauses for the
    temporal order.
    """
    _check_translatable(ctx, "SPL")
    constraints = 0
    name_of = _entity_names(ctx)

    # which field joins the k-th pattern to an earlier one?
    def join_field(pattern_index: int) -> Optional[str]:
        for rel in ctx.attr_relationships:
            a, b = rel.left.pattern, rel.right.pattern
            if not rel.is_equality:
                continue
            if max(a, b) == pattern_index and min(a, b) < pattern_index:
                ref = rel.left if rel.left.pattern == pattern_index else rel.right
                prefix = "subject_" if ref.role == "subject" else "object_"
                return f"{prefix}{ref.attr}"
        return None

    first = ctx.patterns[0]
    terms, count = _spl_terms(first, ctx)
    constraints += count
    lines = [f"search index=sysmon {' '.join(terms)}"]
    lines.append(
        f"| rename start_time AS t1, subject_exe_name AS subj1, "
        f"object_name AS obj1"
    )
    for pattern in ctx.patterns[1:]:
        i = pattern.index + 1
        terms, count = _spl_terms(pattern, ctx)
        constraints += count
        key = join_field(pattern.index) or "agent_id"
        constraints += 1  # the join key equality
        lines.append(
            f"| join {key} [ search index=sysmon {' '.join(terms)} "
            f"| rename start_time AS t{i} ]"
        )
    for rel in ctx.temp_relationships:
        li, ri = rel.left + 1, rel.right + 1
        if rel.kind == "before":
            lines.append(f"| where t{li} < t{ri}")
        elif rel.kind == "after":
            lines.append(f"| where t{li} > t{ri}")
        else:
            lines.append(f"| where abs(t{li} - t{ri}) <= {rel.high or 0}")
        constraints += 1

    agg_items = [i for i in ctx.return_items if i.is_aggregate]
    plain = [i for i in ctx.return_items if not i.is_aggregate]

    def field_for(item: ResolvedReturnItem) -> str:
        if item.ref.role == "event":
            return item.ref.attr
        prefix = "subject_" if item.ref.role == "subject" else "object_"
        return f"{prefix}{item.ref.attr}"

    if agg_items:
        stats = ", ".join(
            f"{'dc' if item.func == 'count' and item.distinct else item.func}"
            f"({field_for(item)}) AS {item.label}"
            for item in agg_items
        )
        by = ", ".join(field_for(item) for item in plain)
        lines.append(f"| stats {stats}" + (f" by {by}" if by else ""))
        if ctx.having is not None:
            from repro.lang.formatter import format_expr

            lines.append(f"| where {format_expr(ctx.having)}")
            constraints += 1
    else:
        fields = ", ".join(field_for(item) for item in ctx.return_items)
        dedup = "| dedup " + fields if ctx.return_distinct else ""
        lines.append(f"| table {fields}")
        if dedup:
            lines.append(dedup)
    if ctx.sort is not None:
        sign = "-" if ctx.sort.descending else ""
        lines.append("| sort " + ", ".join(sign + a for a in ctx.sort.attrs))
    if ctx.top is not None:
        lines.append(f"| head {ctx.top}")
    return TranslatedQuery(
        language="spl", text="\n".join(lines), constraints=constraints
    )
