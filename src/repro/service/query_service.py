"""Concurrent AIQL query front-end (the ROADMAP "heavy traffic" seam).

The seed served exactly one query at a time through
:meth:`repro.AIQLSystem.query`.  :class:`QueryService` executes many AIQL
queries concurrently against one store:

* queries run as tasks on the process-wide :class:`SharedExecutor`
  (``submit`` returns a future; ``submit_many``/``run_many`` batch);
* identical in-flight queries are deduplicated — submitting a query whose
  canonical text is already executing returns the existing future instead
  of spawning a second execution;
* overlapping *sub*-queries (the per-partition data-query scans) are
  deduplicated and amortized by the store's
  :class:`~repro.service.cache.ScanCache` — concurrent cache misses on the
  same ``(partition, filter)`` key execute once (single-flight), and later
  queries hit the warm cache until ingest invalidates the partition.

Executor instances are created per call via the thread-safe
``run_with_stats`` entry points, so any number of worker threads can share
one service.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.engine import compile_query
from repro.engine.anomaly import AnomalyExecutor
from repro.engine.executor import MultieventExecutor
from repro.engine.result import ResultSet
from repro.lang.context import QueryContext
from repro.obs.metrics import REGISTRY
from repro.obs.slowlog import SlowQueryLog
from repro.service.pool import SharedExecutor, get_shared_executor

_M_QUERIES = REGISTRY.counter(
    "aiql_queries_total", "Queries executed (service + facade)"
)
_M_DEDUPED = REGISTRY.counter(
    "aiql_queries_deduped_total", "Submissions served by an in-flight twin"
)
_M_QUERY_SECONDS = REGISTRY.histogram(
    "aiql_query_seconds", "End-to-end query latency (compile + execute)"
)


@dataclass
class ServiceStats:
    """Counters for the service's dedup/concurrency behaviour."""

    submitted: int = 0
    executed: int = 0
    deduped: int = 0


class QueryService:
    """Executes many AIQL queries concurrently against one store."""

    def __init__(
        self,
        store,
        scheduling: str = "relationship",
        parallel: bool = False,
        executor: Optional[SharedExecutor] = None,
        slow_log: Optional[SlowQueryLog] = None,
    ) -> None:
        self.store = store
        self.scheduling = scheduling
        self.parallel = parallel
        self._executor = (
            executor if executor is not None else get_shared_executor()
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, "Future[ResultSet]"] = {}
        self.stats = ServiceStats()
        self.slow_log = slow_log

    # -- compilation ---------------------------------------------------------

    @staticmethod
    def canonical_text(text: str) -> str:
        """Whitespace-insensitive form used as the in-flight dedup key."""
        return " ".join(text.split())

    def compile(self, text: str) -> QueryContext:
        return compile_query(text)

    # -- execution -----------------------------------------------------------

    def _execute(self, source: Union[str, QueryContext]) -> ResultSet:
        started = time.perf_counter()
        ctx = self.compile(source) if isinstance(source, str) else source
        if ctx.kind == "anomaly":
            runner = AnomalyExecutor(
                self.store, scheduling=self.scheduling, parallel=self.parallel
            )
        else:
            runner = MultieventExecutor(
                self.store, scheduling=self.scheduling, parallel=self.parallel
            )
        # Degraded-read annotation (sharded stores): scans recorded as
        # partial between the mark and completion land in result.meta.
        marker = getattr(self.store, "completeness_mark", None)
        mark = marker() if marker is not None else None
        result, stats = runner.run_with_stats(ctx)
        if mark is not None:
            summary = self.store.completeness_since(mark)
            if summary is not None:
                result.meta["completeness"] = summary
        with self._lock:
            self.stats.executed += 1
        elapsed = time.perf_counter() - started
        _M_QUERIES.inc()
        _M_QUERY_SECONDS.observe(elapsed)
        if self.slow_log is not None:
            text = source if isinstance(source, str) else "<precompiled>"
            self.slow_log.observe(
                self.canonical_text(text),
                elapsed,
                rows=len(result),
                detail={
                    "kind": ctx.kind,
                    "events_fetched": stats.events_fetched,
                    "data_queries": stats.data_queries_executed,
                },
            )
        return result

    def submit(self, text: str) -> "Future[ResultSet]":
        """Schedule one query; returns a future for its :class:`ResultSet`.

        If an identical query (up to whitespace) is already in flight, its
        future is returned instead of executing a second copy.  Dedup has
        snapshot semantics: the shared execution may have begun before a
        concurrent ingest, exactly as if the caller's own query had raced
        the ingest.  Queries submitted after the shared one completes
        always re-execute and observe the ingest.
        """
        key = self.canonical_text(text)
        with self._lock:
            self.stats.submitted += 1
            existing = self._inflight.get(key)
            if existing is not None:
                self.stats.deduped += 1
                _M_DEDUPED.inc()
                return existing
            future: "Future[ResultSet]" = Future()
            self._inflight[key] = future

        def task() -> None:
            try:
                value = self._execute(text)
            except BaseException as exc:
                with self._lock:
                    self._inflight.pop(key, None)
                future.set_exception(exc)
            else:
                # Drop from in-flight before resolving: a submit arriving
                # after ingest must re-execute, not adopt a stale result.
                with self._lock:
                    self._inflight.pop(key, None)
                future.set_result(value)

        self._executor.submit(task)
        return future

    def submit_many(self, texts: Sequence[str]) -> List["Future[ResultSet]"]:
        """Schedule a batch; duplicate texts share one execution/future."""
        return [self.submit(text) for text in texts]

    def run(self, text: str) -> ResultSet:
        """Synchronous convenience: submit and wait."""
        return self.submit(text).result()

    def run_many(self, texts: Sequence[str]) -> List[ResultSet]:
        """Execute a batch concurrently; results come back in input order."""
        return [future.result() for future in self.submit_many(texts)]

    # -- introspection -------------------------------------------------------

    @property
    def scan_cache(self):
        return getattr(self.store, "scan_cache", None)

    def stats_snapshot(self) -> Dict[str, object]:
        with self._lock:
            snapshot: Dict[str, object] = {
                "submitted": self.stats.submitted,
                "executed": self.stats.executed,
                "deduped": self.stats.deduped,
            }
        cache = self.scan_cache
        if cache is not None:
            snapshot["scan_cache"] = cache.stats()
        return snapshot
