"""Partition-scan cache: shareable, amortized scan work (ROADMAP scaling).

Investigation workloads repeat themselves: iterative refinement (paper
Sec. 6.2.1) re-issues the same event patterns with small variations, and
concurrent analysts fire queries whose data queries overlap.  The seed
implementation re-scanned every partition on every call.

:class:`ScanCache` memoizes per-partition scan results, keyed by
``(PartitionKey, filter fingerprint)`` where the fingerprint is the
canonicalized hashable form of an :class:`~repro.storage.filters.EventFilter`
(see :func:`repro.storage.filters.filter_fingerprint`).  Properties:

* **LRU-bounded** — at most ``max_entries`` cached partition scans.
* **Invalidation on ingest** — ``EventStore.add_event`` invalidates the
  entries of the partition the event lands in (and only those).
* **Single-flight** — concurrent misses on the same key execute the scan
  once; the other callers wait on the winner's future.  This is the
  storage-level half of the query service's sub-query deduplication.
* **Write-race safety** — a result computed while its partition was
  invalidated is returned to callers (equivalent to a scan racing an
  ingest without the cache) but never inserted into the cache.
* **Generation keying** — callers may tag a value with the *block
  generation* of its source (see :mod:`repro.storage.blocks`); a hit whose
  recorded generation differs from the caller's is a miss.  This is the
  shared invalidation path for selection-vector values: hot partition
  scans key on the partition's live block, cold segment scans on the
  decoded block, so a rebuilt/re-decoded block can never serve another
  block's positions.

Cached values are immutable from the cache's point of view (selection
vectors over append-only blocks, or tuples of frozen events), so sharing
them across threads is safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

_Key = Tuple[Hashable, Hashable]  # (partition key, filter fingerprint)

_V = TypeVar("_V")

# Scheduler-narrowed sub-queries can carry join-derived id sets with
# thousands of members; their fingerprints are one-off (query-result-
# dependent), so caching them churns the LRU and evicts the reusable
# base-pattern entries.  Shared by the hot partition-scan cache, the cold
# per-segment result cache and kernel memoization.
CACHEABLE_ID_SET_LIMIT = 128


def cacheable_filter(flt, limit: int = CACHEABLE_ID_SET_LIMIT) -> bool:
    """Whether ``flt`` is worth a cache entry (narrowed id sets bounded)."""
    ids = len(flt.subject_ids or ()) + len(flt.object_ids or ())
    return ids <= limit


def cache_fingerprint(
    flt, limit: int = CACHEABLE_ID_SET_LIMIT
) -> Optional[tuple]:
    """The fingerprint-keyed caches' shared key policy, in one place.

    Returns the canonical :func:`~repro.storage.filters.filter_fingerprint`
    for cacheable filters and ``None`` for ones that should bypass every
    fingerprint-keyed cache (giant scheduler-narrowed id sets: one-off
    keys whose fingerprints cost an O(n log n) sort each).  The kernel
    cache, the hot partition-scan cache and the cold per-segment cache all
    key through here instead of duplicating the guard+fingerprint pair.
    """
    if not cacheable_filter(flt, limit):
        return None
    # Imported lazily: storage modules import this one at module load.
    from repro.storage.filters import filter_fingerprint

    return filter_fingerprint(flt)


class ScanCache:
    """Thread-safe LRU cache of per-partition scan results."""

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        # entry: (source block generation or None, value as computed)
        self._entries: "OrderedDict[_Key, Tuple[Optional[int], object]]" = (
            OrderedDict()
        )
        self._inflight: Dict[_Key, "Future[object]"] = {}
        self._generations: Dict[Hashable, int] = {}
        # Per-partition key index so ingest-time invalidation is
        # O(entries for that partition), not a walk of the whole cache.
        self._keys_by_partition: Dict[Hashable, set] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.shared_waits = 0
        self.generation_mismatches = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_compute(
        self,
        partition: Hashable,
        fingerprint: Hashable,
        compute: Callable[[], _V],
        generation: Optional[int] = None,
    ) -> _V:
        """Cached scan result for ``(partition, fingerprint)``.

        On a miss, ``compute`` runs exactly once even under concurrent
        callers (single-flight); its result is cached as returned unless
        the partition was invalidated while it ran.  ``generation``, when
        given, is the block generation of the value's source: a cached
        entry recorded under a different generation is treated as a miss
        (and replaced), so selections over a rebuilt block are never
        served against its successor.
        """
        key = (partition, fingerprint)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                if cached[0] == generation:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return cached[1]  # type: ignore[return-value]
                # Stale generation: the source block was rebuilt, so the
                # cached selection can never be served again.  Evict it
                # now (the recompute below re-inserts under the new
                # generation) and count the mismatch distinctly from
                # plain misses — a high rate means block churn, not a
                # cold cache.
                del self._entries[key]
                self._discard_key(key)
                self.generation_mismatches += 1
            future = self._inflight.get(key)
            if future is not None:
                owner = False
                self.shared_waits += 1
            else:
                owner = True
                future = Future()
                self._inflight[key] = future
                invalidation_gen = self._generations.get(partition, 0)
        if not owner:
            return future.result()  # type: ignore[return-value]
        try:
            value = compute()
        except BaseException as exc:
            with self._lock:
                if self._inflight.get(key) is future:
                    del self._inflight[key]
            future.set_exception(exc)
            raise
        with self._lock:
            # Invalidation may have detached this future and a fresh owner
            # may have registered since: only remove our own entry.
            if self._inflight.get(key) is future:
                del self._inflight[key]
            self.misses += 1
            if self._generations.get(partition, 0) == invalidation_gen:
                self._entries[key] = (generation, value)
                self._entries.move_to_end(key)
                self._keys_by_partition.setdefault(partition, set()).add(key)
                while len(self._entries) > self.max_entries:
                    evicted_key, _ = self._entries.popitem(last=False)
                    self._discard_key(evicted_key)
                    self.evictions += 1
        future.set_result(value)
        return value

    def _discard_key(self, key: _Key) -> None:
        keys = self._keys_by_partition.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._keys_by_partition[key[0]]

    def invalidate(self, partition: Hashable) -> int:
        """Drop every cached scan of ``partition``; returns entries dropped.

        Also bumps the partition's generation so in-flight scans started
        before the invalidation are not inserted when they complete.
        """
        with self._lock:
            self._generations[partition] = self._generations.get(partition, 0) + 1
            # Detach in-flight computes too: a miss arriving after this
            # invalidation must scan fresh (read-your-writes), not join a
            # single-flight started before the ingest.  The detached owner
            # still resolves its waiters; it just won't be cached/joined.
            for key in [k for k in self._inflight if k[0] == partition]:
                del self._inflight[key]
            stale = self._keys_by_partition.pop(partition, None)
            if not stale:
                return 0
            for key in stale:
                del self._entries[key]
            self.invalidations += 1
            return len(stale)

    def clear(self) -> None:
        """Drop everything (in-flight scans will not be inserted either)."""
        with self._lock:
            for key in self._inflight:
                partition = key[0]
                self._generations[partition] = (
                    self._generations.get(partition, 0) + 1
                )
            self._entries.clear()
            self._keys_by_partition.clear()

    def stats(self) -> Dict[str, int]:
        """One consistent snapshot of the cache counters.

        Taken under the cache lock so hit/miss/eviction counts are
        mutually consistent; this is the canonical accounting surface
        (the metrics registry and ``AIQLSystem.stats`` read it) — the
        bare attributes exist for cheap in-band increments only.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "shared_waits": self.shared_waits,
                "generation_mismatches": self.generation_mismatches,
            }
