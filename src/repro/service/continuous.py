"""Continuous standing queries over the live stream (detection-at-ingest).

The paper's AIQL investigates *historical* monitoring data: an analyst
writes a query, the engine scans the store.  A production deployment also
wants the inverse — the query stands, the data moves.  This module adds
that scenario on top of the live-ingestion path: clients register AIQL
multievent queries as *standing subscriptions* and receive an alert for
every new tuple of events that satisfies the query, as the batches that
complete it commit.

Design, reusing the batch machinery end to end:

* **Compile once at registration** — each pattern's :class:`EventFilter`
  compiles into a :class:`~repro.storage.kernels.ScanKernel` when the
  subscription is created (shared with the scan-path kernel cache), so the
  per-event hot path of a commit is the same flat generated closure a
  batch scan runs.
* **Sliding windows with incremental eviction** — events matched by a
  pattern accumulate into that pattern's window, a dict keyed by event id
  plus a min-heap on start time.  The stream high-water mark (the newest
  start time pushed through the engine) advances with every batch and
  events older than ``high_water - horizon`` are popped from the heap —
  eviction cost is proportional to what expires, not to window size.  An
  event is *in horizon* iff ``start_time > high_water - horizon``.
* **Delta evaluation** — a multi-pattern query is re-evaluated only for
  the dependency-graph nodes whose windows changed.  For each pattern
  ``k`` that matched new events the engine runs one delta term: the new
  events of ``k`` joined against the *post-batch* windows of patterns
  before ``k`` and the *pre-batch* windows of patterns after ``k`` (the
  standard delta-join decomposition — every new tuple is produced exactly
  once).  Candidate windows are first narrowed through the scheduler's
  own machinery (:func:`~repro.engine.data_query.attr_rel_narrowing` /
  :func:`~repro.engine.data_query.temp_rel_narrowing` applied to the
  pattern's :class:`~repro.engine.data_query.DataQuery`, then compiled and
  kernel-tested), so a join only sees window events that can still pair.
* **Alerts** — each new tuple emits one :class:`Alert` carrying the
  matched events in pattern order.  Alerts land in a bounded engine-level
  queue (oldest dropped when full, counted) and fire the subscription's
  callback; callback exceptions are contained and counted, never fail a
  commit.

Equivalence invariant (differential-tested): with an unbounded horizon,
the set of alert keys a subscription has emitted after a committed prefix
equals the tuple set the batch scheduler produces for the same query over
the same prefix — on every storage backend.

Thread-safety: ``push`` is called from the streaming writer (inside the
:class:`~repro.service.stream.StreamSession` commit, via its commit
hooks); ``subscribe``/``unsubscribe``/``drain`` may be called from any
thread.  One engine lock serializes them.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.data_query import (
    DataQuery,
    attr_rel_narrowing,
    temp_rel_narrowing,
)
from repro.engine.tuples import TupleSet
from repro.lang.context import QueryContext
from repro.model.events import SystemEvent
from repro.obs.metrics import REGISTRY
from repro.storage.kernels import ScanKernel, kernel_for

_M_PUSH_BATCHES = REGISTRY.counter(
    "aiql_continuous_batches_total", "Stream batches pushed through standing queries"
)
_M_PUSH_EVENTS = REGISTRY.counter(
    "aiql_continuous_events_total", "Events pushed through standing queries"
)
_M_ALERTS = REGISTRY.counter(
    "aiql_continuous_alerts_total", "Alerts emitted by standing queries"
)
_M_ALERTS_DROPPED = REGISTRY.counter(
    "aiql_continuous_alerts_dropped_total",
    "Alerts evicted from a full engine queue before being drained",
)
_M_ALERT_LATENCY = REGISTRY.histogram(
    "aiql_continuous_alert_latency_seconds",
    "Commit-entry to alert-emission latency of standing queries",
)

DEFAULT_WINDOW_S = 3600.0
DEFAULT_MAX_SUBSCRIPTIONS = 64
DEFAULT_ALERT_QUEUE = 1024

# Mirrors the scheduler's optimizer guard: IN lists bigger than this cost
# more than they prune (id sets are exempt — they stay set-membership).
_MAX_NARROWING_VALUES = 256


class ContinuousError(RuntimeError):
    """Raised for invalid subscription requests (kind, limits, windows)."""


@dataclass(frozen=True)
class Alert:
    """One newly-matched tuple of a standing query.

    ``key`` and ``events`` are ordered by pattern index; ``time`` is the
    newest event start time in the tuple (data time); ``latency_s`` is the
    wall-clock delay from the carrying batch's commit entry to emission
    (``None`` when the push carried no commit timestamp).
    """

    query: str
    key: Tuple[int, ...]
    events: Tuple[SystemEvent, ...]
    time: float
    latency_s: Optional[float] = None


@dataclass
class _PatternWindow:
    """One pattern's sliding window: dict + eviction heap."""

    events: Dict[int, SystemEvent] = field(default_factory=dict)
    heap: List[Tuple[float, int]] = field(default_factory=list)

    def add(self, event: SystemEvent) -> None:
        self.events[event.event_id] = event
        heapq.heappush(self.heap, (event.start_time, event.event_id))

    def evict(self, cutoff: float) -> int:
        """Drop events with ``start_time <= cutoff``; returns the count."""
        dropped = 0
        while self.heap and self.heap[0][0] <= cutoff:
            _, event_id = heapq.heappop(self.heap)
            if self.events.pop(event_id, None) is not None:
                dropped += 1
        return dropped


class Subscription:
    """One standing query: compiled kernels + per-pattern windows.

    Create through :meth:`ContinuousQueryEngine.subscribe`; read-only for
    clients (the engine mutates it under its lock).
    """

    def __init__(
        self,
        name: str,
        text: str,
        ctx: QueryContext,
        horizon_s: float,
        callback: Optional[Callable[[Alert], None]],
    ) -> None:
        self.name = name
        self.text = text
        self.ctx = ctx
        self.horizon_s = horizon_s
        self.callback = callback
        self.active = True
        # Compiled once here; commits only run kernel.test per event.
        self.kernels: Tuple[ScanKernel, ...] = tuple(
            kernel_for(p.filter) for p in ctx.patterns
        )
        self.queries: Tuple[DataQuery, ...] = tuple(
            DataQuery.for_pattern(p) for p in ctx.patterns
        )
        self.windows: Tuple[_PatternWindow, ...] = tuple(
            _PatternWindow() for _ in ctx.patterns
        )
        self.high_water = float("-inf")
        # Alert keys already emitted.  A key stays deduplicable only while
        # every component event is still in its window — once one is
        # evicted the tuple can never be re-derived (candidates come from
        # windows, and the stream never re-issues an event id) — so the
        # set is pruned against the windows, amortized O(1) per eviction,
        # keeping a bounded-horizon subscription's memory bounded.  With
        # an unbounded horizon nothing evicts and the set accumulates
        # every alert (the batch-equivalence invariant reads it).
        self.seen: Set[Tuple[int, ...]] = set()
        self.events_matched = 0
        self.events_evicted = 0
        self.alerts_emitted = 0
        self.callback_errors = 0
        self._evicted_since_prune = 0

    @property
    def cutoff(self) -> float:
        """Events at or below this start time are out of horizon."""
        return self.high_water - self.horizon_s

    def prune_seen(self) -> None:
        """Drop dedup keys that can no longer be re-derived (see above)."""
        windows = self.windows
        self.seen = {
            key
            for key in self.seen
            if all(eid in windows[i].events for i, eid in enumerate(key))
        }
        self._evicted_since_prune = 0

    def window_snapshot(self) -> Dict[int, Tuple[int, ...]]:
        """Current window contents: pattern index -> sorted event ids."""
        return {
            i: tuple(sorted(window.events))
            for i, window in enumerate(self.windows)
        }

    def stats(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "patterns": len(self.kernels),
            "horizon_s": self.horizon_s,
            "window_sizes": [len(w.events) for w in self.windows],
            "events_matched": self.events_matched,
            "events_evicted": self.events_evicted,
            "alerts_emitted": self.alerts_emitted,
            "callback_errors": self.callback_errors,
        }


class ContinuousQueryEngine:
    """Evaluates standing queries incrementally as stream batches commit."""

    def __init__(
        self,
        registry,
        default_window_s: float = DEFAULT_WINDOW_S,
        max_window_s: Optional[float] = None,
        max_subscriptions: int = DEFAULT_MAX_SUBSCRIPTIONS,
        alert_queue: int = DEFAULT_ALERT_QUEUE,
    ) -> None:
        if default_window_s <= 0:
            raise ValueError("default_window_s must be > 0")
        if max_window_s is not None and max_window_s <= 0:
            raise ValueError("max_window_s must be > 0 (or None)")
        if max_subscriptions < 1:
            raise ValueError("max_subscriptions must be >= 1")
        if alert_queue < 1:
            raise ValueError("alert_queue must be >= 1")
        self.registry = registry
        self.default_window_s = default_window_s
        self.max_window_s = max_window_s
        self.max_subscriptions = max_subscriptions
        self.alerts: "deque[Alert]" = deque(maxlen=alert_queue)
        self.alerts_dropped = 0
        self.batches_pushed = 0
        self.events_pushed = 0
        # Reentrant: alert callbacks run under this lock and may call
        # back into the engine (drain, subscribe, unsubscribe).
        self._lock = threading.RLock()
        self._subs: Dict[str, Subscription] = {}
        self._names = itertools.count(1)

    # -- subscription management -------------------------------------------

    @property
    def subscriptions(self) -> Tuple[Subscription, ...]:
        with self._lock:
            return tuple(self._subs.values())

    def subscribe(
        self,
        text: str,
        callback: Optional[Callable[[Alert], None]] = None,
        window_s: Optional[float] = None,
        name: Optional[str] = None,
    ) -> Subscription:
        """Register ``text`` as a standing query; returns its subscription.

        ``window_s`` is the sliding horizon in seconds of data time
        (default :attr:`default_window_s`, clamped to :attr:`max_window_s`
        when one is configured; ``float("inf")`` keeps every match
        forever).  ``callback`` fires once per alert, on the committing
        thread — keep it fast, and note that exceptions are swallowed
        (counted on the subscription), never surfaced to the writer.
        """
        from repro.engine import compile_query

        ctx = compile_query(text)
        if ctx.kind != "multievent":
            raise ContinuousError(
                f"only multievent queries can stand ({ctx.kind!r} given); "
                "anomaly queries need the sliding-window batch executor"
            )
        if (
            ctx.group_by
            or ctx.return_count
            or ctx.top is not None
            or ctx.sort is not None
            or ctx.having is not None
            or any(item.is_aggregate for item in ctx.return_items)
        ):
            raise ContinuousError(
                "standing queries alert per matched tuple; aggregation, "
                "grouping, having, sort and top clauses need a batch query"
            )
        horizon = self.default_window_s if window_s is None else float(window_s)
        if horizon <= 0:
            raise ContinuousError("window_s must be > 0")
        if self.max_window_s is not None:
            horizon = min(horizon, self.max_window_s)
        with self._lock:
            if len(self._subs) >= self.max_subscriptions:
                raise ContinuousError(
                    f"subscription limit reached ({self.max_subscriptions}); "
                    "unsubscribe a standing query first"
                )
            if name is None:
                name = f"standing-{next(self._names)}"
            if name in self._subs:
                raise ContinuousError(f"subscription {name!r} already exists")
            sub = Subscription(name, text, ctx, horizon, callback)
            self._subs[name] = sub
            return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a subscription (idempotent); its windows are released."""
        with self._lock:
            existing = self._subs.get(sub.name)
            if existing is sub:
                del self._subs[sub.name]
            sub.active = False

    # -- stream side ---------------------------------------------------------

    def push(
        self,
        events: Sequence[SystemEvent],
        started: Optional[float] = None,
    ) -> List[Alert]:
        """Evaluate one committed batch against every standing query.

        ``started`` is the committing session's ``perf_counter`` at commit
        entry; when given, each alert carries its commit-to-alert latency.
        Returns the alerts this batch produced (they are also queued and
        delivered to callbacks).
        """
        if not events:
            return []
        emitted: List[Alert] = []
        with self._lock:
            self.batches_pushed += 1
            self.events_pushed += len(events)
            _M_PUSH_BATCHES.inc()
            _M_PUSH_EVENTS.inc(len(events))
            # Snapshot: a callback may (un)subscribe mid-push; changes
            # take effect from the next batch.
            for sub in tuple(self._subs.values()):
                emitted.extend(self._push_sub(sub, events, started))
        return emitted

    def drain(self) -> List[Alert]:
        """Pop and return every queued alert (oldest first)."""
        with self._lock:
            out = list(self.alerts)
            self.alerts.clear()
            return out

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "subscriptions": len(self._subs),
                "batches_pushed": self.batches_pushed,
                "events_pushed": self.events_pushed,
                "alerts_queued": len(self.alerts),
                "alerts_dropped": self.alerts_dropped,
                "per_query": [sub.stats() for sub in self._subs.values()],
            }

    # -- incremental evaluation ---------------------------------------------

    def _push_sub(
        self,
        sub: Subscription,
        events: Sequence[SystemEvent],
        started: Optional[float],
    ) -> List[Alert]:
        lookup = self.registry.get
        deltas: List[List[SystemEvent]] = [[] for _ in sub.kernels]
        for event in events:
            for i, kernel in enumerate(sub.kernels):
                if kernel.test(event, lookup):
                    deltas[i].append(event)

        # The stream high-water mark advances with every pushed event —
        # matched or not — so an idle pattern's window still slides.
        batch_high = max(e.start_time for e in events)
        if batch_high > sub.high_water:
            sub.high_water = batch_high
        cutoff = sub.cutoff

        # Evict before snapshotting the pre-batch windows: an event that
        # just slid out of horizon must not pair with this batch's matches.
        evicted = sum(window.evict(cutoff) for window in sub.windows)
        if evicted:
            sub.events_evicted += evicted
            sub._evicted_since_prune += evicted
            live = sum(len(window.events) for window in sub.windows)
            if sub.seen and sub._evicted_since_prune >= max(64, live):
                sub.prune_seen()
        old_ids: List[Set[int]] = [set(w.events) for w in sub.windows]

        changed: List[int] = []
        for i, delta in enumerate(deltas):
            live = [e for e in delta if e.start_time > cutoff]
            if len(live) != len(delta):
                deltas[i] = live
            if live:
                changed.append(i)
                sub.events_matched += len(live)
                for event in live:
                    sub.windows[i].add(event)
        if not changed:
            return []

        # One delta term per changed dependency-graph node: pattern k's new
        # events against post-batch windows before k and pre-batch windows
        # after k, so every new tuple is produced exactly once.
        alerts: List[Alert] = []
        for k in changed:
            for row in self._delta_term(sub, k, deltas[k], old_ids):
                alert = self._emit(sub, row, started)
                if alert is not None:
                    alerts.append(alert)
        return alerts

    def _delta_term(
        self,
        sub: Subscription,
        k: int,
        delta: List[SystemEvent],
        old_ids: List[Set[int]],
    ) -> List[Tuple[SystemEvent, ...]]:
        """Join pattern ``k``'s new events through the other windows.

        Returns fully-bound rows ordered by pattern index (the TupleSet
        join sorts combined patterns, so once every pattern is joined the
        row layout is exactly pattern order).
        """
        ctx = sub.ctx
        entity_of = self.registry.get
        bound = TupleSet.from_events(k, delta)
        remaining = [p.index for p in ctx.patterns if p.index != k]
        applied: Set[int] = set()

        # Relationships whose both endpoints are the seed pattern (entity
        # reuse inside one pattern) never ride a join; filter them now.
        self_attr = [
            r
            for r in ctx.attr_relationships
            if r.left.pattern == k and r.right.pattern == k
        ]
        self_temp = [
            r for r in ctx.temp_relationships if r.left == k and r.right == k
        ]
        if self_attr or self_temp:
            bound = bound.filter(self_attr, self_temp, entity_of)
            for rel in self_attr + self_temp:
                applied.add(id(rel))
            if not bound.rows:
                return []

        def rels_with_bound(j: int, bound_set: Set[int]):
            attr = [
                r
                for r in ctx.attr_relationships
                if id(r) not in applied
                and {r.left.pattern, r.right.pattern} <= bound_set | {j}
                and j in (r.left.pattern, r.right.pattern)
            ]
            temp = [
                r
                for r in ctx.temp_relationships
                if id(r) not in applied
                and {r.left, r.right} <= bound_set | {j}
                and j in (r.left, r.right)
            ]
            return attr, temp

        while remaining:
            bound_set = set(bound.patterns)
            # Join connected patterns first (their relationships prune);
            # disconnected ones fall back to a cross product at the tail.
            remaining.sort(
                key=lambda j: -sum(
                    len(rels) for rels in rels_with_bound(j, bound_set)
                )
            )
            j = remaining.pop(0)
            attr_rels, temp_rels = rels_with_bound(j, bound_set)
            allowed = (
                sub.windows[j].events.values()
                if j < k
                else [
                    e
                    for eid, e in sub.windows[j].events.items()
                    if eid in old_ids[j]
                ]
            )
            candidates = self._narrow_candidates(
                sub, j, list(allowed), attr_rels, temp_rels, bound
            )
            if not candidates:
                return []
            bound = bound.join(
                TupleSet.from_events(j, candidates),
                attr_rels,
                temp_rels,
                entity_of,
            )
            for rel in attr_rels:
                applied.add(id(rel))
            for rel in temp_rels:
                applied.add(id(rel))
            if not bound.rows:
                return []
        return bound.rows

    def _narrow_candidates(
        self,
        sub: Subscription,
        j: int,
        candidates: List[SystemEvent],
        attr_rels,
        temp_rels,
        bound: TupleSet,
    ) -> List[SystemEvent]:
        """The scheduler's narrowed re-query, answered from a window.

        Every relationship between pattern ``j`` and an already-bound
        pattern narrows ``j``'s data query exactly as Algorithm 1's
        constrained execution would; the narrowed filter compiles to a
        kernel and prunes the window candidates before the join (the join
        re-checks exactly, so narrowing only has to be sound).
        """
        if not candidates or (not attr_rels and not temp_rels):
            return candidates
        entity_of = self.registry.get
        query = sub.queries[j]
        narrowed = query
        for rel in attr_rels:
            other = (
                rel.right.pattern
                if rel.left.pattern == j
                else rel.left.pattern
            )
            narrowing = attr_rel_narrowing(
                rel, other, bound.events_of(other), entity_of
            )
            if narrowing is None:
                continue
            ref, values = narrowing
            if ref.attr != "id" and len(values) > _MAX_NARROWING_VALUES:
                continue
            narrowed = narrowed.narrowed_by_values(ref, values)
        for rel in temp_rels:
            other = rel.right if rel.left == j else rel.left
            window = temp_rel_narrowing(rel, other, bound.events_of(other))
            if window is not None:
                narrowed = narrowed.narrowed_by_window(window)
        if narrowed is query:
            return candidates
        kernel = kernel_for(narrowed.filter)
        if kernel.always_false:
            return []
        lookup = self.registry.get
        return [e for e in candidates if kernel.test(e, lookup)]

    def _emit(
        self,
        sub: Subscription,
        events: Tuple[SystemEvent, ...],
        started: Optional[float],
    ) -> Optional[Alert]:
        key = tuple(e.event_id for e in events)
        if key in sub.seen:
            return None
        sub.seen.add(key)
        alert = Alert(
            query=sub.name,
            key=key,
            events=events,
            time=max(e.start_time for e in events),
            latency_s=(
                time.perf_counter() - started if started is not None else None
            ),
        )
        sub.alerts_emitted += 1
        _M_ALERTS.inc()
        if alert.latency_s is not None:
            _M_ALERT_LATENCY.observe(alert.latency_s)
        if len(self.alerts) == self.alerts.maxlen:
            self.alerts_dropped += 1
            _M_ALERTS_DROPPED.inc()
        self.alerts.append(alert)
        if sub.callback is not None:
            try:
                sub.callback(alert)
            except Exception:
                sub.callback_errors += 1
        return alert


__all__ = [
    "Alert",
    "ContinuousError",
    "ContinuousQueryEngine",
    "Subscription",
    "DEFAULT_WINDOW_S",
    "DEFAULT_MAX_SUBSCRIPTIONS",
    "DEFAULT_ALERT_QUEUE",
]
