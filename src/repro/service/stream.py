"""Live streaming ingestion: batched appends concurrent with queries.

The paper's deployment ingests a continuous agent stream while analysts run
investigation queries.  :class:`StreamSession` makes that a first-class
scenario: one streaming writer appends events while any number of query
service workers read, and the write path is incremental instead of
stop-the-world:

* **Batched atomic commits** — appends are staged in the session and
  committed per batch.  Each partition publishes its sub-batch with a
  single visibility bump (:meth:`repro.storage.table.EventTable.append_batch`),
  and the store's committed-event watermark moves only after *every*
  partition of the batch has published, so a concurrent scan observes a
  prefix-consistent snapshot: whole batches — even ones spanning
  partitions — never a torn one.
* **Monotone ingest watermark** — :meth:`commit` returns the total number of
  events durably visible in the attached stores.  A query issued after
  observing watermark *W* sees every event counted by *W* (read-your-writes).
* **Partition-scoped cache invalidation** — a commit evicts only the scan
  cache entries of partitions the batch actually touched (once per
  partition, not once per event); cached scans of every other partition
  stay hit-warm.
* **Exactly-once validation** — events are validated at :meth:`append` time
  through :meth:`repro.storage.ingest.Ingestor.build_event`; the commit
  fan-out appends the already-validated batch to every store.
* **Commit hooks** — consumers registered via :meth:`on_commit` observe
  every published batch in order, on the committing thread; the continuous
  query engine (:mod:`repro.service.continuous`) rides these to evaluate
  standing queries at ingest.

The session is duck-type compatible with the :class:`Ingestor` surface the
workload generators use (``process``/``file``/``connection``/
``registry_value``/``pipe`` observation helpers and ``emit``), so any
generator can be pointed at a session to stream instead of burst-load —
that is what ``repro.workload.live`` and ``corpus --live`` do.

Concurrency contract: the attached stores are single-writer/multi-reader;
one StreamSession is that single writer.  ``append``/``commit`` are
internally locked so an auto-flush racing an explicit ``commit`` stays
well-ordered, but two sessions (or a session plus direct ``emit`` calls
from another thread) must not write concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Tuple

from repro.model.events import SystemEvent
from repro.obs.metrics import REGISTRY

DEFAULT_BATCH_SIZE = 256

_M_BATCHES = REGISTRY.counter(
    "aiql_ingest_batches_total", "Stream batches committed"
)
_M_EVENTS = REGISTRY.counter(
    "aiql_ingest_events_total", "Events committed via stream sessions"
)
_M_COMMIT_SECONDS = REGISTRY.histogram(
    "aiql_ingest_commit_seconds",
    "Commit latency: publish + cache invalidation + commit hooks",
)

# A commit hook receives the just-published batch and the committing
# thread's ``time.perf_counter()`` captured at commit entry (so downstream
# consumers — e.g. the continuous query engine — can report commit-to-alert
# latency without re-reading the clock race-prone).
CommitHook = Callable[[Tuple[SystemEvent, ...], float], None]


class StreamSession:
    """Batched live-ingestion front-end over an :class:`Ingestor`."""

    def __init__(self, ingestor, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.ingestor = ingestor
        self.batch_size = batch_size
        # Reentrant: commit hooks (and the alert callbacks they drive) run
        # on the committing thread under this lock and may read session
        # state — stats(), pending — or even stage follow-up events.
        self._lock = threading.RLock()
        self._pending: List[SystemEvent] = []
        self._watermark = ingestor.events_ingested
        self._commit_hooks: List[CommitHook] = []
        self.appended = 0
        self.batches_committed = 0
        self.hook_errors = 0

    # -- entity observations (instant, not batched) -------------------------

    @property
    def registry(self):
        return self.ingestor.registry

    @property
    def clock(self):
        return self.ingestor.clock

    def process(self, *args, **kwargs):
        return self.ingestor.process(*args, **kwargs)

    def file(self, *args, **kwargs):
        return self.ingestor.file(*args, **kwargs)

    def connection(self, *args, **kwargs):
        return self.ingestor.connection(*args, **kwargs)

    def registry_value(self, *args, **kwargs):
        return self.ingestor.registry_value(*args, **kwargs)

    def pipe(self, *args, **kwargs):
        return self.ingestor.pipe(*args, **kwargs)

    # -- event stream --------------------------------------------------------

    @property
    def watermark(self) -> int:
        """Monotone count of events committed and visible to queries."""
        return self._watermark

    @property
    def events_ingested(self) -> int:
        """Committed plus staged events (the generator-facing counter)."""
        with self._lock:
            return self.ingestor.events_ingested + len(self._pending)

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def append(
        self,
        agent_id: int,
        timestamp: float,
        operation,
        subject,
        obj,
        duration: float = 0.0,
        amount: int = 0,
        failure_code: int = 0,
    ) -> SystemEvent:
        """Stage one event; auto-commits when the batch fills.

        The event is clock-corrected, numbered and validated immediately
        (an invalid event raises :class:`IngestError` here and stages
        nothing); it becomes visible to queries at the next commit.
        """
        event = self.ingestor.build_event(
            agent_id, timestamp, operation, subject, obj,
            duration=duration, amount=amount, failure_code=failure_code,
        )
        with self._lock:
            self._pending.append(event)
            self.appended += 1
            flush = len(self._pending) >= self.batch_size
        if flush:
            self.commit()
        return event

    # Generator compatibility: BackgroundGenerator and the attack injectors
    # call ``ingestor.emit``; pointed at a session they stream instead.
    emit = append

    def on_commit(self, hook: CommitHook) -> None:
        """Register a hook fired after each non-empty batch publishes.

        Hooks run on the committing thread, inside the commit (so they
        observe batches in publication order and never race a later
        commit).  They receive ``(batch, started)`` where ``started`` is
        the commit's entry ``perf_counter``.  A raising hook is contained
        (counted on :attr:`hook_errors`) — ingestion never fails because a
        consumer did.  The session lock is reentrant, so a hook may read
        session state or stage follow-up events from the committing
        thread; blocking on *another* thread that uses this session would
        deadlock, as with any lock.
        """
        with self._lock:
            self._commit_hooks.append(hook)

    def commit(self) -> int:
        """Atomically publish the staged batch; returns the new watermark."""
        started = time.perf_counter()
        with self._lock:
            batch, self._pending = self._pending, []
            if batch:
                self.ingestor.commit(batch)
                self.batches_committed += 1
                if self._commit_hooks:
                    published = tuple(batch)
                    for hook in self._commit_hooks:
                        try:
                            hook(published, started)
                        except Exception:
                            self.hook_errors += 1
            self._watermark = self.ingestor.events_ingested
            if batch:
                _M_BATCHES.inc()
                _M_EVENTS.inc(len(batch))
                _M_COMMIT_SECONDS.observe(time.perf_counter() - started)
            return self._watermark

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Commit the tail even on error: already-staged events are valid.
        self.commit()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "appended": self.appended,
                "committed": self._watermark,
                "pending": len(self._pending),
                "batches": self.batches_committed,
                "batch_size": self.batch_size,
                "commit_hooks": len(self._commit_hooks),
                "hook_errors": self.hook_errors,
            }
