"""Process-wide shared thread pool for scan and query parallelism.

The seed implementation constructed a fresh ``ThreadPoolExecutor`` inside
every parallel scan (``engine/parallel.scan_split`` and the partition scan
of ``storage/database.EventStore``), paying thread spawn/teardown on every
call and making concurrent queries fight over unbounded thread counts.

:class:`SharedExecutor` replaces all of those call sites: one lazily
created pool, reused for the life of the process, shared between the query
service (query-level concurrency) and the storage layer (partition/
sub-window fan-out).  :func:`get_shared_executor` returns the process-wide
default instance.

Nested-submission protection: a bounded pool deadlocks when a task running
on a worker blocks on sub-tasks that cannot be scheduled because every
worker is busy.  :meth:`SharedExecutor.map_all` therefore runs the fan-out
inline (serially) when invoked from one of the *same* pool's workers —
query tasks keep the workers, partition scans inside them degrade
gracefully to serial execution, and cross-query parallelism is preserved.
A worker of one pool fanning out on a different pool cannot deadlock and
stays parallel.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

_THREAD_NAME_PREFIX = "aiql-shared"


def _default_max_workers() -> int:
    # Matches the stdlib heuristic for I/O-light thread pools.
    return min(32, (os.cpu_count() or 1) + 4)


class SharedExecutor:
    """A lazily created, long-lived ``ThreadPoolExecutor`` wrapper.

    The underlying pool is constructed on first use and reused for every
    subsequent call; :attr:`pools_created` counts constructions so tests can
    assert that repeated scans never build per-call pools.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers or _default_max_workers()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        # Unique per instance: only a fan-out submitted back into the SAME
        # pool can deadlock, so a worker of pool A may still parallelize
        # on pool B.
        self._prefix = f"{_THREAD_NAME_PREFIX}-{id(self):x}"
        self.pools_created = 0

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self._prefix,
                )
                self.pools_created += 1
            return self._pool

    def in_worker(self) -> bool:
        """True when the calling thread is one of THIS pool's workers."""
        return threading.current_thread().name.startswith(self._prefix)

    def submit(self, fn: Callable[..., _R], *args, **kwargs) -> "Future[_R]":
        return self._ensure().submit(fn, *args, **kwargs)

    def map_all(
        self, fn: Callable[[_T], _R], items: Iterable[_T]
    ) -> List[_R]:
        """Apply ``fn`` to every item, in parallel when that is safe.

        Runs inline when there is at most one item or when called from one
        of this pool's own workers (see module docstring); either way the
        results come back in input order.
        """
        items = list(items)
        if len(items) <= 1 or self.in_worker():
            return [fn(item) for item in items]
        return list(self._ensure().map(fn, items))

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)


_default: Optional[SharedExecutor] = None
_default_lock = threading.Lock()


def get_shared_executor(max_workers: Optional[int] = None) -> SharedExecutor:
    """The process-wide shared executor (created on first call).

    ``max_workers`` only takes effect on the call that creates the
    instance; later callers share whatever size was established first.
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = SharedExecutor(max_workers=max_workers)
        return _default


def shutdown_shared_executor(wait: bool = True) -> None:
    """Shut down the process-wide executor's threads, if any exist.

    Idempotent and safe to call at any time: the instance survives (its
    configured size included) and lazily rebuilds its pool on next use, so
    this only releases the threads — ``AIQLSystem.close()`` calls it so a
    closed deployment leaves no pool threads behind (threads surviving
    into forked workers can deadlock; shard workers also use ``spawn`` for
    the same reason).  Never waits when called from one of the pool's own
    workers — joining your own thread would deadlock.
    """
    with _default_lock:
        executor = _default
    if executor is not None:
        executor.shutdown(wait=wait and not executor.in_worker())
