"""Concurrent query service subsystem.

Three pieces, layered:

* :mod:`repro.service.pool` — the process-wide shared thread pool that
  replaced every per-call ``ThreadPoolExecutor``;
* :mod:`repro.service.cache` — the LRU partition-scan cache (keyed by
  partition + canonical filter fingerprint, invalidated on ingest);
* :mod:`repro.service.query_service` — the batch front-end that runs many
  AIQL queries concurrently and deduplicates overlapping work;
* :mod:`repro.service.stream` — live streaming ingestion: batched atomic
  commits concurrent with query execution, with a monotone watermark and
  partition-scoped cache invalidation.
"""

from repro.service.cache import ScanCache
from repro.service.pool import SharedExecutor, get_shared_executor
from repro.service.stream import StreamSession

__all__ = [
    "QueryService",
    "ScanCache",
    "ServiceStats",
    "SharedExecutor",
    "StreamSession",
    "get_shared_executor",
]


def __getattr__(name: str):
    # QueryService pulls in the whole engine/lang stack; resolving it
    # lazily lets the storage layer import pool/cache without creating an
    # import cycle (storage -> service -> engine -> lang -> storage).
    if name in ("QueryService", "ServiceStats"):
        from repro.service import query_service

        return getattr(query_service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
