"""Concurrent query service subsystem.

Three pieces, layered:

* :mod:`repro.service.pool` — the process-wide shared thread pool that
  replaced every per-call ``ThreadPoolExecutor``;
* :mod:`repro.service.cache` — the LRU partition-scan cache (keyed by
  partition + canonical filter fingerprint, invalidated on ingest);
* :mod:`repro.service.query_service` — the batch front-end that runs many
  AIQL queries concurrently and deduplicates overlapping work;
* :mod:`repro.service.stream` — live streaming ingestion: batched atomic
  commits concurrent with query execution, with a monotone watermark and
  partition-scoped cache invalidation;
* :mod:`repro.service.continuous` — standing queries over the live
  stream: per-pattern compiled kernels, sliding windows, delta joins and
  alert callbacks driven by the stream's commit hooks.
"""

from repro.service.cache import ScanCache
from repro.service.pool import (
    SharedExecutor,
    get_shared_executor,
    shutdown_shared_executor,
)
from repro.service.stream import StreamSession

__all__ = [
    "Alert",
    "ContinuousError",
    "ContinuousQueryEngine",
    "QueryService",
    "ScanCache",
    "ServiceStats",
    "SharedExecutor",
    "StreamSession",
    "Subscription",
    "get_shared_executor",
    "shutdown_shared_executor",
]

_LAZY = {
    # QueryService and the continuous engine pull in the whole engine/lang
    # stack; resolving them lazily lets the storage layer import pool/cache
    # without creating an import cycle (storage -> service -> engine ->
    # lang -> storage).
    "QueryService": "repro.service.query_service",
    "ServiceStats": "repro.service.query_service",
    "Alert": "repro.service.continuous",
    "ContinuousError": "repro.service.continuous",
    "ContinuousQueryEngine": "repro.service.continuous",
    "Subscription": "repro.service.continuous",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
