"""Sharded deployment coordinator: scatter/gather over worker processes.

:class:`ShardedStore` partitions the store horizontally by the same
``(day, agent-group)`` key the partitioned backend and the cold tier
already use, across N ``spawn``-started worker processes
(:mod:`repro.shard.worker`).  It exposes the common store surface
(``register_entity`` / ``add_batch`` / ``scan_columns`` / ``scan`` /
``estimated_events`` / ``stats`` / ...), so everything above it —
:class:`~repro.engine.executor.MultieventExecutor`, the scheduler's
constrained re-query narrowing, the query service, streaming sessions —
runs unchanged.  In particular **join narrowing pushes down for free**:
the scheduler re-queries constrained patterns through
``store.scan_columns(narrowed_filter)``, and the narrowed filter (id
sets, IN predicates, tightened windows) ships to every shard, where the
local compiled kernel applies it before anything crosses a pipe.

Consistency (torn-read prevention): the coordinator raises its global
committed watermark only after *every* shard involved in a batch has
acknowledged it, and every scatter scan carries the watermark observed
at issue time; workers cap their results at that id.  A scan racing a
multi-shard commit therefore sees the whole batch or none of it — the
cross-process generalization of the partitioned store's in-process
commit watermark.

Durability: with ``data_dir`` set each worker owns ``shard-<i>/`` (its
own WAL, snapshot and cold segments) and replays it on startup; the
coordinator merges the per-shard hellos — entity records union to the
longest global observation-order prefix (every entity is broadcast to
every shard, so each shard's durable entity set is a prefix), event-id
and per-agent seq counters take the max, counts sum — and fast-forwards
the shared ingestor so the stream continues exactly where the newest
durable commit left it.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.model.entities import Entity
from repro.model.events import SystemEvent
from repro.obs import REGISTRY, active_trace
from repro.shard.wire import (
    decode_events,
    decode_result,
    encode_events,
    payload_nbytes,
)
from repro.shard.worker import ShardSpec, shard_worker_main
from repro.storage.blocks import BlockScanResult
from repro.storage.filters import EventFilter
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionKey, PartitionScheme
from repro.storage.persist import entity_record, rebuild_entity
from repro.tier.recovery import RecoveryReport
from repro.tier.store import CompactionReport


class ShardError(RuntimeError):
    """A worker failed executing a command (carries its traceback)."""


_M_SHARD_SCANS = REGISTRY.counter(
    "aiql_shard_scatter_scans_total",
    "Scatter scan rounds issued to all shards",
)
_M_SHARD_BYTES = REGISTRY.counter(
    "aiql_shard_gather_bytes_total",
    "Serialized column bytes gathered from a shard",
    labelnames=("shard",),
)
_M_SHARD_ROWS = REGISTRY.counter(
    "aiql_shard_gather_rows_total",
    "Survivor rows gathered from a shard",
    labelnames=("shard",),
)
_M_SHARD_RTT = REGISTRY.histogram(
    "aiql_shard_gather_seconds",
    "Per-shard scatter-to-reply round-trip time",
    labelnames=("shard",),
)
_M_SHARD_ROUTED = REGISTRY.counter(
    "aiql_shard_events_routed_total",
    "Ingested events routed to a shard",
    labelnames=("shard",),
)


class ShardedStore:
    """Store facade over N shard worker processes.

    Thread safety: one lock serializes whole scatter/gather rounds (a
    pipe is a byte stream — interleaved requests would mismatch
    replies), so concurrent query-service scans and a streaming writer
    coexist; parallelism comes from the workers computing concurrently
    *within* a round, which is the point of sharding.
    """

    def __init__(self, ingestor: Ingestor, config) -> None:
        if config.shards < 1:
            raise ValueError("ShardedStore needs config.shards >= 1")
        self.ingestor = ingestor
        self.registry = ingestor.registry
        self.scheme = PartitionScheme(agents_per_group=config.agents_per_group)
        self.shards = config.shards
        self.durable = config.data_dir is not None
        self.recovery: Optional[RecoveryReport] = None
        self._lock = threading.RLock()
        self._pending_entities: List[dict] = []
        self._event_count = 0
        self._committed = 0
        self._closed = False
        self._conns = []
        self._procs = []
        # Coordinator-side scatter/gather accounting, one slot per shard:
        # what crossed the pipes (bytes/rows gathered, cumulative recv
        # wait) and what was routed in — the skew view stats() reports.
        self._scan_rounds = 0
        self._shard_bytes = [0] * self.shards
        self._shard_rows = [0] * self.shards
        self._shard_recv_s = [0.0] * self.shards
        self._shard_routed = [0] * self.shards
        ctx = multiprocessing.get_context("spawn")
        for index in range(self.shards):
            spec = ShardSpec(
                index=index,
                backend=config.backend,
                agents_per_group=config.agents_per_group,
                segments=config.segments,
                distribution=config.distribution,
                columnar=config.columnar,
                scan_cache=config.scan_cache,
                scan_cache_entries=config.scan_cache_entries,
                data_dir=(
                    f"{config.data_dir}/shard-{index:02d}"
                    if config.data_dir is not None
                    else None
                ),
                retention_days=config.retention_days,
                compact_interval_s=config.compact_interval_s,
                wal_sync=config.wal_sync,
                cold_cache_segments=config.cold_cache_segments,
                cold_scan_cache_entries=config.cold_scan_cache_entries,
                metrics=getattr(config, "metrics", True),
            )
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, spec),
                daemon=True,
                name=f"aiql-shard-{index}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._merge_hellos([self._recv(i) for i in range(self.shards)])

    # -- startup / recovery merge -----------------------------------------

    def _merge_hellos(self, hellos: Sequence[dict]) -> None:
        records: Dict[int, dict] = {}
        for hello in hellos:
            for record in hello["entities"]:
                records.setdefault(record["id"], record)
        for entity_id in sorted(records):
            # Union of per-shard prefixes of the global observation order
            # = the longest prefix: ids re-intern contiguously, and the
            # id check inside rebuild_entity enforces it.
            self.ingestor.observe(rebuild_entity(self.registry, records[entity_id]))
        self._event_count = sum(h["events"] for h in hellos)
        next_event_id = max(h["next_event_id"] for h in hellos)
        if self._event_count or next_event_id > 1:
            seqs: Dict[int, int] = {}
            for hello in hellos:
                for agent_id, seq in hello["seqs"].items():
                    if seq > seqs.get(agent_id, 0):
                        seqs[agent_id] = seq
            self.ingestor.resume(
                next_event_id=next_event_id,
                seqs=seqs,
                events_ingested=self._event_count,
            )
            self._committed = next_event_id - 1
        reports = [h["report"] for h in hellos if h["report"] is not None]
        if reports:
            self.recovery = RecoveryReport(
                snapshot_events=sum(r.snapshot_events for r in reports),
                wal_events_replayed=sum(r.wal_events_replayed for r in reports),
                cold_events=sum(r.cold_events for r in reports),
                duplicates_reconciled=sum(
                    r.duplicates_reconciled for r in reports
                ),
                next_event_id=next_event_id,
            )

    # -- RPC plumbing ------------------------------------------------------

    def _send(self, shard: int, message: tuple) -> None:
        self._conns[shard].send(message)

    def _recv(self, shard: int):
        status, payload = self._conns[shard].recv()
        if status != "ok":
            raise ShardError(f"shard {shard} failed:\n{payload}")
        return payload

    def _gather(
        self,
        targets: Sequence[int],
        timings: Optional[List[float]] = None,
    ) -> List[object]:
        """Collect one reply per target — ALL of them, even on failure.

        A pipe is a strict request/response stream: raising on the first
        bad reply would leave the other shards' replies queued and
        desynchronize every later command.  So failures are collected
        while every pipe drains, then raised together.

        ``timings``, when given, receives one wall-clock recv wait per
        target in order.  Replies are drained sequentially, so a shard's
        figure is the residual wait *after* earlier pipes drained — the
        straggler (the shard the round actually waited on) still stands
        out, which is what the skew metrics are for.
        """
        payloads: List[object] = []
        failures: List[str] = []
        for shard in targets:
            started = time.perf_counter() if timings is not None else 0.0
            try:
                status, payload = self._conns[shard].recv()
            except (EOFError, OSError):
                if timings is not None:
                    timings.append(time.perf_counter() - started)
                failures.append(f"shard {shard} died mid-command")
                payloads.append(None)
                continue
            if timings is not None:
                timings.append(time.perf_counter() - started)
            if status != "ok":
                failures.append(f"shard {shard} failed:\n{payload}")
                payloads.append(None)
            else:
                payloads.append(payload)
        if failures:
            raise ShardError("\n".join(failures))
        return payloads

    def _scatter(self, message: tuple, shards: Optional[Sequence[int]] = None):
        """Send one command to (all) shards, gather replies in order."""
        targets = list(range(self.shards)) if shards is None else list(shards)
        with self._lock:
            self._flush_entities_locked()
            for shard in targets:
                self._send(shard, message)
            return self._gather(targets)

    def _flush_entities_locked(self) -> None:
        if self._pending_entities:
            records, self._pending_entities = self._pending_entities, []
            for shard in range(self.shards):
                self._send(shard, ("entities", records))
            self._gather(range(self.shards))

    def shard_of(self, key: PartitionKey) -> int:
        """Stable partition-key routing (no process-seeded hashing)."""
        return (key.day * 31 + key.agent_group) % self.shards

    # -- ingest ------------------------------------------------------------

    def register_entity(self, entity: Entity) -> None:
        """Queue an entity broadcast; flushed before the next command.

        Every shard receives every entity (the registry is tiny next to
        the event stream), which keeps worker registries id-identical to
        the coordinator's and makes each shard's durable entity set a
        prefix of the global observation order — what recovery's merge
        relies on.
        """
        with self._lock:
            self._pending_entities.append(entity_record(entity))

    def add_event(self, event: SystemEvent) -> None:
        self.add_batch((event,))

    def add_batch(self, events: Sequence[SystemEvent]) -> Tuple[PartitionKey, ...]:
        """Route a committed batch to its shards; atomic to scatter scans.

        The global watermark is raised only after every involved shard
        acknowledged (and therefore published) its slice, so a scatter
        scan issued concurrently carries a watermark below this batch and
        filters it out on every shard — never a torn read.
        """
        if not events:
            return ()
        by_shard: Dict[int, List[SystemEvent]] = {}
        touched: Dict[PartitionKey, None] = {}
        for event in events:
            key = self.scheme.key_for(event.agent_id, event.start_time)
            touched[key] = None
            by_shard.setdefault(self.shard_of(key), []).append(event)
        with self._lock:
            self._flush_entities_locked()
            for shard, chunk in by_shard.items():
                self._send(shard, ("batch", encode_events(chunk)))
                self._shard_routed[shard] += len(chunk)
            if REGISTRY.enabled:
                for shard, chunk in by_shard.items():
                    _M_SHARD_ROUTED.inc(len(chunk), shard=str(shard))
            self._gather(list(by_shard))
            self._event_count += len(events)
            top = max(e.event_id for e in events)
            if top > self._committed:
                self._committed = top
        return tuple(touched)

    # -- queries -----------------------------------------------------------

    def scan_columns(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> BlockScanResult:
        """Scatter the filter, gather per-shard column slices.

        Every shard prunes/scans locally (compiled kernels, partition
        pruning, scan cache, cold tier) and replies with its survivors as
        one serialized block slice in (start_time, event_id) order,
        capped at this scan's committed watermark; parts from different
        shards are disjoint by construction, so no cross-shard dedup is
        needed.
        """
        trace = active_trace()
        observing = REGISTRY.enabled or trace is not None
        timings: Optional[List[float]] = [] if observing else None
        with self._lock:
            self._flush_entities_locked()
            watermark = self._committed
            message = ("scan", flt, watermark, parallel, use_entity_index)
            for shard in range(self.shards):
                self._send(shard, message)
            payloads = self._gather(range(self.shards), timings=timings)
            if observing:
                self._scan_rounds += 1
                for shard, payload in enumerate(payloads):
                    self._shard_bytes[shard] += payload_nbytes(payload)
                    self._shard_rows[shard] += payload["n"]
                    self._shard_recv_s[shard] += (timings or [])[shard]
        if observing:
            total_bytes = sum(payload_nbytes(p) for p in payloads)
            total_rows = sum(p["n"] for p in payloads)
            if REGISTRY.enabled:
                _M_SHARD_SCANS.inc()
                for shard, payload in enumerate(payloads):
                    label = str(shard)
                    _M_SHARD_BYTES.inc(payload_nbytes(payload), shard=label)
                    _M_SHARD_ROWS.inc(payload["n"], shard=label)
                    _M_SHARD_RTT.observe((timings or [])[shard], shard=label)
            if trace is not None:
                span = trace.current
                span.add("shards_scattered", self.shards)
                span.add("shard_bytes_gathered", total_bytes)
                span.add("shard_rows_gathered", total_rows)
        parts = [decode_result(p) for p in payloads]
        return BlockScanResult([s for s in parts if s is not None])

    def scan(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> List[SystemEvent]:
        return self.scan_columns(flt, parallel, use_entity_index).events()

    def full_scan(self, flt: EventFilter) -> List[SystemEvent]:
        """Pruning- and index-free scatter scan (the soundness oracle)."""
        merged: List[SystemEvent] = []
        for payload in self._scatter(("full_scan", flt)):
            merged.extend(decode_events(payload))
        merged.sort(key=lambda e: (e.start_time, e.event_id))
        return merged

    def estimated_events(self, flt: EventFilter) -> int:
        return sum(self._scatter(("estimate", flt)))

    def time_range(self) -> Tuple[Optional[float], Optional[float]]:
        ranges = self._scatter(("time_range",))
        mins = [lo for lo, _ in ranges if lo is not None]
        maxs = [hi for _, hi in ranges if hi is not None]
        return (min(mins) if mins else None, max(maxs) if maxs else None)

    # -- maintenance -------------------------------------------------------

    def compact(self, retention_days: Optional[int] = None) -> CompactionReport:
        """One synchronous compaction pass on every shard; merged report."""
        reports = self._scatter(("compact", retention_days))
        merged = CompactionReport()
        partitions: List[PartitionKey] = []
        for report in reports:
            merged.events_migrated += report.events_migrated
            merged.segments_written += report.segments_written
            merged.cold_bytes += report.cold_bytes
            partitions.extend(report.partitions)
            if report.cutoff_day is not None:
                merged.cutoff_day = (
                    report.cutoff_day
                    if merged.cutoff_day is None
                    else max(merged.cutoff_day, report.cutoff_day)
                )
        merged.partitions = tuple(partitions)
        return merged

    def checkpoint(self) -> int:
        """Snapshot + WAL-truncate every shard; returns hot events written."""
        return sum(self._scatter(("checkpoint",)))

    def close(self) -> None:
        """Stop and join every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for shard in range(self.shards):
                try:
                    self._send(shard, ("stop",))
                    self._recv(shard)
                except (OSError, EOFError, BrokenPipeError, ShardError):
                    pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._event_count

    def __iter__(self) -> Iterator[SystemEvent]:
        """All committed events, in (start_time, event_id) order."""
        return iter(self.scan_columns(EventFilter()).events())

    def metrics(self) -> List[dict]:
        """Per-worker metrics registry snapshots, one dict per shard.

        Registries are process-local, so the coordinator's own registry
        never sees a worker-side scan/cache/kernel counter; this pulls
        each worker's snapshot over the pipe (the ``metrics`` command).
        """
        return self._scatter(("metrics",))

    def stats(self) -> Dict[str, object]:
        """Merged deployment view plus the per-shard detail behind it.

        ``per_shard`` keeps each worker's full stats dict (enriched with
        the coordinator-side ``scatter_gather`` accounting for that
        shard), and ``scatter_gather`` is the merged roll-up — so skew
        (events per shard, bytes gathered per shard, straggler recv
        waits) survives the merge instead of being summed away.
        """
        worker_stats = self._scatter(("stats",))
        with self._lock:
            rounds = self._scan_rounds
            gather = [
                {
                    "shard": shard,
                    "events_routed": self._shard_routed[shard],
                    "bytes_gathered": self._shard_bytes[shard],
                    "rows_gathered": self._shard_rows[shard],
                    "recv_seconds": self._shard_recv_s[shard],
                }
                for shard in range(self.shards)
            ]
        per_shard: List[Dict[str, object]] = []
        for shard, stats in enumerate(worker_stats):
            entry = dict(stats)
            entry["shard"] = shard
            entry["scatter_gather"] = gather[shard]
            per_shard.append(entry)
        return {
            "events": self._event_count,
            "entities": len(self.registry),
            "shards": self.shards,
            "partitions": sum(s.get("partitions", 0) for s in worker_stats),
            "shard_events": [s.get("events", 0) for s in worker_stats],
            "per_shard": per_shard,
            "scatter_gather": {
                "scan_rounds": rounds,
                "events_routed": sum(g["events_routed"] for g in gather),
                "bytes_gathered": sum(g["bytes_gathered"] for g in gather),
                "rows_gathered": sum(g["rows_gathered"] for g in gather),
                "recv_seconds": sum(g["recv_seconds"] for g in gather),
            },
        }
