"""Sharded deployment coordinator: scatter/gather over worker processes.

:class:`ShardedStore` partitions the store horizontally by the same
``(day, agent-group)`` key the partitioned backend and the cold tier
already use, across N ``spawn``-started worker processes
(:mod:`repro.shard.worker`).  It exposes the common store surface
(``register_entity`` / ``add_batch`` / ``scan_columns`` / ``scan`` /
``estimated_events`` / ``stats`` / ...), so everything above it —
:class:`~repro.engine.executor.MultieventExecutor`, the scheduler's
constrained re-query narrowing, the query service, streaming sessions —
runs unchanged.  In particular **join narrowing pushes down for free**:
the scheduler re-queries constrained patterns through
``store.scan_columns(narrowed_filter)``, and the narrowed filter (id
sets, IN predicates, tightened windows) ships to every shard, where the
local compiled kernel applies it before anything crosses a pipe.

Consistency (torn-read prevention): the coordinator raises its global
committed watermark only after *every* shard involved in a batch has
acknowledged it, and every scatter scan carries the watermark observed
at issue time; workers cap their results at that id.  A scan racing a
multi-shard commit therefore sees the whole batch or none of it — the
cross-process generalization of the partitioned store's in-process
commit watermark.

Fault tolerance (ISSUE 9): every coordinator↔worker command waits with
``Connection.poll``-based deadlines (``SystemConfig(
shard_command_timeout_s, shard_scan_timeout_s)``) instead of blocking
``recv()``.  A dead pipe or blown deadline hands the shard to the
:class:`~repro.shard.supervisor.ShardSupervisor` — quarantine, SIGKILL,
respawn, WAL replay, entity-registry replay, re-admission — and
*idempotent* commands (scans, estimates, stats, metrics, heartbeats,
maintenance) are re-issued to the recovered worker under bounded
exponential backoff with jitter (:mod:`repro.core.retry`).  The
non-idempotent ingest commit never retries: it fails fast with a
:class:`ShardCommitError` reporting exactly which shards acked, and the
global watermark stays below the batch so no reader ever sees the
partial commit.  When a shard stays unavailable after retries, the
configured :data:`ShardReadPolicy` decides: ``fail_fast`` raises,
``degraded`` returns the surviving shards' watermark-capped rows with a
:class:`ScanCompleteness` annotation (missing shard ids, estimated
missed rows) that flows into ``ResultSet.meta`` and EXPLAIN reports.

Durability: with ``data_dir`` set each worker owns ``shard-<i>/`` (its
own WAL, snapshot and cold segments) and replays it on startup; the
coordinator merges the per-shard hellos — entity records union to the
longest global observation-order prefix (every entity is broadcast to
every shard, so each shard's durable entity set is a prefix), event-id
and per-agent seq counters take the max, counts sum — and fast-forwards
the shared ingestor so the stream continues exactly where the newest
durable commit left it.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import (
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.model.entities import Entity
from repro.model.events import SystemEvent
from repro.obs import REGISTRY, active_trace
from repro.shard.chaos import FaultPlan, plan_from_env
from repro.shard.supervisor import ShardSupervisor
from repro.shard.wire import (
    decode_events,
    decode_result,
    encode_events,
    payload_nbytes,
)
from repro.shard.worker import ShardSpec, shard_worker_main
from repro.storage.blocks import BlockScanResult
from repro.storage.filters import EventFilter
from repro.storage.ingest import Ingestor
from repro.storage.partition import PartitionKey, PartitionScheme
from repro.storage.persist import entity_record, rebuild_entity
from repro.tier.recovery import RecoveryReport
from repro.tier.store import CompactionReport

# Scatter-scan read behaviour when a shard stays unavailable after the
# retry budget: fail the query, or answer from the survivors annotated.
ShardReadPolicy = ("fail_fast", "degraded")


class ShardError(RuntimeError):
    """A worker failed executing a command (carries its traceback)."""


class ShardTimeout(ShardError):
    """A worker blew its command deadline and could not be recovered."""


class ShardCommitError(ShardError):
    """A non-idempotent ingest commit failed on some shards.

    ``acked_shards`` committed (and WAL-logged, when durable) their
    slices; ``failed_shards`` did not acknowledge.  The coordinator's
    watermark was *not* raised, so no scatter scan observes the partial
    batch — the caller decides whether to re-submit once the deployment
    heals.
    """

    def __init__(
        self,
        message: str,
        acked_shards: Sequence[int] = (),
        failed_shards: Sequence[int] = (),
    ) -> None:
        super().__init__(message)
        self.acked_shards = tuple(acked_shards)
        self.failed_shards = tuple(failed_shards)


@dataclass(frozen=True)
class ScanCompleteness:
    """How partial a degraded scatter scan's answer is.

    ``missing_shards`` did not answer this round (unavailable after the
    retry budget); ``lossy_shards`` answered but previously lost state
    to a non-durable restart.  ``estimated_missed_rows`` combines both:
    the acked-routing count of each missing shard plus the recovery
    shortfall of each lossy one — an upper bound on committed rows this
    result cannot contain.
    """

    missing_shards: Tuple[int, ...]
    lossy_shards: Tuple[int, ...]
    estimated_missed_rows: int
    total_shards: int
    watermark: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "missing_shards": list(self.missing_shards),
            "lossy_shards": list(self.lossy_shards),
            "estimated_missed_rows": self.estimated_missed_rows,
            "total_shards": self.total_shards,
            "watermark": self.watermark,
        }


_M_SHARD_SCANS = REGISTRY.counter(
    "aiql_shard_scatter_scans_total",
    "Scatter scan rounds issued to all shards",
)
_M_SHARD_BYTES = REGISTRY.counter(
    "aiql_shard_gather_bytes_total",
    "Serialized column bytes gathered from a shard",
    labelnames=("shard",),
)
_M_SHARD_ROWS = REGISTRY.counter(
    "aiql_shard_gather_rows_total",
    "Survivor rows gathered from a shard",
    labelnames=("shard",),
)
_M_SHARD_RTT = REGISTRY.histogram(
    "aiql_shard_gather_seconds",
    "Per-shard scatter-to-reply round-trip time",
    labelnames=("shard",),
)
_M_SHARD_ROUTED = REGISTRY.counter(
    "aiql_shard_events_routed_total",
    "Ingested events routed to a shard",
    labelnames=("shard",),
)
_M_DEGRADED_SCANS = REGISTRY.counter(
    "aiql_shard_degraded_scans_total",
    "Scatter scans answered without every shard",
)

# Idempotent commands may be re-issued to a recovered worker; everything
# else fails fast (the ingest "batch" command is the only member today).
_IDEMPOTENT = frozenset(
    {
        "scan",
        "full_scan",
        "estimate",
        "time_range",
        "stats",
        "metrics",
        "ping",
        "entities",
        "compact",
        "checkpoint",
    }
)


class ShardedStore:
    """Store facade over N shard worker processes.

    Thread safety: one lock serializes whole scatter/gather rounds (a
    pipe is a byte stream — interleaved requests would mismatch
    replies), so concurrent query-service scans, a streaming writer and
    the supervisor's heartbeat sweep coexist; parallelism comes from the
    workers computing concurrently *within* a round, which is the point
    of sharding.
    """

    def __init__(self, ingestor: Ingestor, config) -> None:
        if config.shards < 1:
            raise ValueError("ShardedStore needs config.shards >= 1")
        self.ingestor = ingestor
        self.registry = ingestor.registry
        self.config = config
        self.scheme = PartitionScheme(agents_per_group=config.agents_per_group)
        self.shards = config.shards
        self.durable = config.data_dir is not None
        self.recovery: Optional[RecoveryReport] = None
        self.command_timeout_s = config.shard_command_timeout_s
        self.scan_timeout_s = config.shard_scan_timeout_s
        self.read_policy = config.shard_read_policy
        self._lock = threading.RLock()
        self._pending_entities: List[dict] = []
        self._event_count = 0
        self._committed = 0
        self._closed = False
        self._conns: List[Optional[object]] = [None] * self.shards
        self._procs: List[Optional[object]] = [None] * self.shards
        self.leaked_workers = 0
        # Coordinator-side scatter/gather accounting, one slot per shard:
        # what crossed the pipes (bytes/rows gathered, cumulative recv
        # wait) and what was routed in — the skew view stats() reports.
        self._scan_rounds = 0
        self._shard_bytes = [0] * self.shards
        self._shard_rows = [0] * self.shards
        self._shard_recv_s = [0.0] * self.shards
        self._shard_routed = [0] * self.shards
        self._shard_acked = [0] * self.shards
        # Degraded-read bookkeeping: every partial answer appends one
        # completeness record; query layers snapshot the sequence number
        # around an execution and merge what landed in between into
        # ResultSet.meta / EXPLAIN reports.
        # Torn-commit exclusion: event ids of slices some shards *did*
        # acknowledge inside a batch whose commit ultimately failed.
        # The watermark alone cannot hide them forever (a later
        # successful commit raises it past the orphaned ids), so every
        # scan ships this set and workers drop the ids at encode time —
        # an answered batch is all-or-nothing even after failed commits.
        self._torn: set = set()
        self._degraded_total = 0
        self._completeness_seq = 0
        self._completeness_log: Deque[Tuple[int, ScanCompleteness]] = deque(
            maxlen=256
        )
        chaos_spec = config.shard_chaos
        plan = (
            FaultPlan.from_spec(chaos_spec, self.shards)
            if chaos_spec
            else plan_from_env(self.shards)
        )
        self.fault_plan = plan
        self._ctx = multiprocessing.get_context("spawn")
        self._specs: List[ShardSpec] = []
        for index in range(self.shards):
            self._specs.append(
                ShardSpec(
                    index=index,
                    backend=config.backend,
                    agents_per_group=config.agents_per_group,
                    segments=config.segments,
                    distribution=config.distribution,
                    columnar=config.columnar,
                    scan_cache=config.scan_cache,
                    scan_cache_entries=config.scan_cache_entries,
                    data_dir=(
                        f"{config.data_dir}/shard-{index:02d}"
                        if config.data_dir is not None
                        else None
                    ),
                    retention_days=config.retention_days,
                    compact_interval_s=config.compact_interval_s,
                    wal_sync=config.wal_sync,
                    cold_cache_segments=config.cold_cache_segments,
                    cold_scan_cache_entries=config.cold_scan_cache_entries,
                    metrics=getattr(config, "metrics", True),
                )
            )
            self._spawn_worker(index, faults=plan.for_shard(index))
        self._supervisor = ShardSupervisor(self, config)
        hellos = []
        for index in range(self.shards):
            status, payload = self._recv_reply(index, self.command_timeout_s)
            if status != "ok":
                self._abort_startup()
                raise ShardError(
                    f"shard {index} failed to start ({status}):\n{payload}"
                )
            hellos.append(payload)
        self._merge_hellos(hellos)
        self._supervisor.start()

    def _abort_startup(self) -> None:
        """Kill every spawned worker when construction itself fails."""
        for index in range(self.shards):
            conn, proc = self._conns[index], self._procs[index]
            if conn is not None:
                conn.close()
            if proc is not None and proc.is_alive():
                proc.kill()
                proc.join(timeout=5)

    def _spawn_worker(self, index: int, faults=()) -> None:
        """Start (or restart) shard ``index``'s process from its spec."""
        spec = replace(self._specs[index], faults=tuple(faults))
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, spec),
            daemon=True,
            name=f"aiql-shard-{index}",
        )
        proc.start()
        child_conn.close()
        self._conns[index] = parent_conn
        self._procs[index] = proc

    # -- startup / recovery merge -----------------------------------------

    def _merge_hellos(self, hellos: Sequence[dict]) -> None:
        records: Dict[int, dict] = {}
        for hello in hellos:
            for record in hello["entities"]:
                records.setdefault(record["id"], record)
        for entity_id in sorted(records):
            # Union of per-shard prefixes of the global observation order
            # = the longest prefix: ids re-intern contiguously, and the
            # id check inside rebuild_entity enforces it.
            self.ingestor.observe(rebuild_entity(self.registry, records[entity_id]))
        self._event_count = sum(h["events"] for h in hellos)
        for shard, hello in enumerate(hellos):
            self._shard_acked[shard] = hello["events"]
        next_event_id = max(h["next_event_id"] for h in hellos)
        if self._event_count or next_event_id > 1:
            seqs: Dict[int, int] = {}
            for hello in hellos:
                for agent_id, seq in hello["seqs"].items():
                    if seq > seqs.get(agent_id, 0):
                        seqs[agent_id] = seq
            self.ingestor.resume(
                next_event_id=next_event_id,
                seqs=seqs,
                events_ingested=self._event_count,
            )
            self._committed = next_event_id - 1
        reports = [h["report"] for h in hellos if h["report"] is not None]
        if reports:
            self.recovery = RecoveryReport(
                snapshot_events=sum(r.snapshot_events for r in reports),
                wal_events_replayed=sum(r.wal_events_replayed for r in reports),
                cold_events=sum(r.cold_events for r in reports),
                duplicates_reconciled=sum(
                    r.duplicates_reconciled for r in reports
                ),
                next_event_id=next_event_id,
            )

    # -- RPC plumbing ------------------------------------------------------

    def _send(self, shard: int, message: tuple) -> bool:
        """Best-effort send; ``False`` when the pipe is gone."""
        conn = self._conns[shard]
        if conn is None:
            return False
        try:
            conn.send(message)
        except (OSError, BrokenPipeError, ValueError):
            return False
        return True

    def _recv_reply(
        self, shard: int, timeout_s: Optional[float]
    ) -> Tuple[str, object]:
        """One deadline-bounded reply: ``(status, payload)``.

        Status is ``"ok"``/``"err"`` (the worker answered), ``"timeout"``
        (deadline blew — the pipe may still carry a late reply and must
        not be reused before a recovery), or ``"dead"`` (pipe closed).
        Never blocks past ``timeout_s``; ``None`` waits forever (the
        pre-deadline behaviour).
        """
        conn = self._conns[shard]
        if conn is None:
            return "dead", f"shard {shard} is quarantined"
        try:
            if timeout_s is not None and not conn.poll(timeout_s):
                self._supervisor.note_timeout(shard)
                return "timeout", f"shard {shard} blew {timeout_s:g}s deadline"
            status, payload = conn.recv()
        except (EOFError, OSError):
            return "dead", f"shard {shard} died mid-command"
        return status, payload

    def _request(
        self, shard: int, message: tuple, timeout_s: Optional[float]
    ) -> Tuple[str, object]:
        """Send one command and wait (bounded) for its reply."""
        if not self._send(shard, message):
            return "dead", f"shard {shard} pipe closed"
        return self._recv_reply(shard, timeout_s)

    def _scatter_round(
        self,
        message: tuple,
        targets: Sequence[int],
        timeout_s: Optional[float],
        timings: Optional[Dict[int, float]] = None,
    ) -> Tuple[Dict[int, object], Dict[int, str]]:
        """One scatter + bounded gather + supervised heal/retry round.

        Scatters ``message`` to ``targets``, drains one reply per target
        against a *shared* deadline (so the drain-on-error path can
        never block unboundedly on a dead straggler), hands every
        timed-out/dead shard to the supervisor, and — for idempotent
        commands — re-issues the command to the recovered worker under
        the bounded backoff policy.  Returns ``(payloads, failures)``
        keyed by shard; worker-*reported* command errors (``"err"``
        replies: the worker is alive and the pipe is in sync — nothing
        to recover) are raised as :class:`ShardError` after the drain.

        Caller must hold the coordinator lock.
        """
        command = message[0]
        retriable = command in _IDEMPOTENT
        payloads: Dict[int, object] = {}
        failures: Dict[int, str] = {}
        errors: Dict[int, str] = {}
        sent: List[int] = []
        for shard in targets:
            if self._send(shard, message):
                sent.append(shard)
            else:
                failures[shard] = "dead"
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        for shard in sent:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            started = time.perf_counter()
            status, payload = self._recv_reply(shard, remaining)
            if timings is not None:
                timings[shard] = (
                    timings.get(shard, 0.0) + time.perf_counter() - started
                )
            if status == "ok":
                payloads[shard] = payload
            elif status == "err":
                errors[shard] = payload
            else:
                failures[shard] = status

        # Supervised heal: every timed-out/dead shard is recovered (the
        # pipe is desynchronized either way); idempotent commands then
        # retry against the fresh worker with backoff between attempts.
        if failures:
            delays = [0.0, *self._supervisor.retry_policy.delays()]
            for shard in list(failures):
                reason = f"{message[0]}: {failures[shard]}"
                for delay in delays:
                    if delay > 0:
                        time.sleep(delay)
                    if not self._supervisor.recover(shard, reason):
                        break
                    if not retriable:
                        # Healed for future commands; the failed command
                        # itself fails fast (non-idempotent).
                        break
                    self._supervisor.note_retry(shard)
                    started = time.perf_counter()
                    status, payload = self._request(shard, message, timeout_s)
                    if timings is not None:
                        timings[shard] = (
                            timings.get(shard, 0.0)
                            + time.perf_counter()
                            - started
                        )
                    if status == "ok":
                        payloads[shard] = payload
                        del failures[shard]
                        break
                    if status == "err":
                        errors[shard] = payload
                        del failures[shard]
                        break
                    reason = f"{message[0]} retry: {status}"
        if errors:
            raise ShardError(
                "\n".join(
                    f"shard {shard} failed:\n{tb}"
                    for shard, tb in sorted(errors.items())
                )
            )
        return payloads, failures

    def _available_targets(self) -> Tuple[List[int], List[int]]:
        """(serving shards, quarantined/failed shards)."""
        serving, missing = [], []
        for shard in range(self.shards):
            (serving if self._supervisor.available(shard) else missing).append(
                shard
            )
        return serving, missing

    def _scatter(
        self,
        message: tuple,
        timeout_s: Optional[float] = None,
        tolerate_missing: bool = False,
    ) -> Dict[int, object]:
        """Send one command to all serving shards, gather replies.

        With ``tolerate_missing`` (or the ``degraded`` read policy),
        unavailable shards are simply absent from the returned dict;
        otherwise any missing shard raises.
        """
        timeout_s = self.command_timeout_s if timeout_s is None else timeout_s
        with self._lock:
            self._flush_entities_locked()
            serving, unavailable = self._available_targets()
            payloads, failures = self._scatter_round(
                message, serving, timeout_s
            )
        missing = sorted(set(unavailable) | set(failures))
        if missing and not (
            tolerate_missing or self.read_policy == "degraded"
        ):
            raise ShardTimeout(
                f"{message[0]}: shard(s) {missing} unavailable after "
                f"supervised recovery"
            )
        return payloads

    def _flush_entities_locked(self) -> None:
        if self._pending_entities:
            records, self._pending_entities = self._pending_entities, []
            serving, _ = self._available_targets()
            # Idempotent broadcast: a shard that misses it because it was
            # down gets the full registry replayed at re-admission.
            self._scatter_round(
                ("entities", records), serving, self.command_timeout_s
            )

    def shard_of(self, key: PartitionKey) -> int:
        """Stable partition-key routing (no process-seeded hashing)."""
        return (key.day * 31 + key.agent_group) % self.shards

    # -- ingest ------------------------------------------------------------

    def register_entity(self, entity: Entity) -> None:
        """Queue an entity broadcast; flushed before the next command.

        Every shard receives every entity (the registry is tiny next to
        the event stream), which keeps worker registries id-identical to
        the coordinator's and makes each shard's durable entity set a
        prefix of the global observation order — what recovery's merge
        relies on.
        """
        with self._lock:
            self._pending_entities.append(entity_record(entity))

    def add_event(self, event: SystemEvent) -> None:
        self.add_batch((event,))

    def add_batch(self, events: Sequence[SystemEvent]) -> Tuple[PartitionKey, ...]:
        """Route a committed batch to its shards; atomic to scatter scans.

        The global watermark is raised only after every involved shard
        acknowledged (and therefore published) its slice, so a scatter
        scan issued concurrently carries a watermark below this batch and
        filters it out on every shard — never a torn read.

        Fail-fast (non-idempotent): a shard that dies or blows its
        deadline mid-commit raises :class:`ShardCommitError` naming the
        shards that did ack; the watermark is *not* raised, so the
        partial batch stays invisible to every reader.  The supervisor
        still heals the failed worker so the stream can resume.
        """
        if not events:
            return ()
        by_shard: Dict[int, List[SystemEvent]] = {}
        touched: Dict[PartitionKey, None] = {}
        for event in events:
            key = self.scheme.key_for(event.agent_id, event.start_time)
            touched[key] = None
            by_shard.setdefault(self.shard_of(key), []).append(event)
        with self._lock:
            self._flush_entities_locked()
            unavailable = [
                shard
                for shard in by_shard
                if not self._supervisor.available(shard)
            ]
            if unavailable:
                # Refuse before any slice ships: no shard commits rows
                # the watermark would have to hide.
                raise ShardCommitError(
                    f"commit refused: shard(s) {sorted(unavailable)} "
                    f"unavailable",
                    acked_shards=(),
                    failed_shards=sorted(unavailable),
                )
            for shard, chunk in by_shard.items():
                self._shard_routed[shard] += len(chunk)
            if REGISTRY.enabled:
                for shard, chunk in by_shard.items():
                    _M_SHARD_ROUTED.inc(len(chunk), shard=str(shard))
            messages = {
                shard: ("batch", encode_events(chunk))
                for shard, chunk in by_shard.items()
            }
            payloads: Dict[int, object] = {}
            failures: Dict[int, str] = {}
            for shard, message in messages.items():
                if not self._send(shard, message):
                    failures[shard] = "dead"
                else:
                    payloads[shard] = None
            deadline = (
                None
                if self.command_timeout_s is None
                else time.monotonic() + self.command_timeout_s
            )
            for shard in list(payloads):
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                status, payload = self._recv_reply(shard, remaining)
                if status == "ok":
                    payloads[shard] = payload
                else:
                    del payloads[shard]
                    failures[shard] = (
                        payload if status == "err" else status
                    )
            if failures:
                # The batch is now partial: the slices acked shards hold
                # must never surface (a later commit raises the watermark
                # past them), so quarantine their ids from every scan.
                for shard in payloads:
                    self._torn.update(e.event_id for e in by_shard[shard])
                    self._shard_acked[shard] += len(by_shard[shard])
                # Heal the dead/wedged workers (not worker-reported
                # errors: those pipes are still in sync), then fail fast.
                for shard, reason in failures.items():
                    if reason in ("dead", "timeout"):
                        self._supervisor.recover(
                            shard, f"batch commit: {reason}"
                        )
                raise ShardCommitError(
                    f"batch commit failed on shard(s) "
                    f"{sorted(failures)}: "
                    + "; ".join(
                        f"shard {s}: {r}" for s, r in sorted(failures.items())
                    ),
                    acked_shards=sorted(payloads),
                    failed_shards=sorted(failures),
                )
            for shard, chunk in by_shard.items():
                self._shard_acked[shard] += len(chunk)
            self._event_count += len(events)
            top = max(e.event_id for e in events)
            if top > self._committed:
                self._committed = top
        return tuple(touched)

    # -- queries -----------------------------------------------------------

    def _completeness_for(
        self, missing: Sequence[int], answered: Sequence[int], watermark: int
    ) -> Optional[ScanCompleteness]:
        """Annotation for a scan round, ``None`` when it was complete.

        Missing shards contribute their acked routing count (all their
        committed rows are absent); answering shards that lost state to
        a non-durable restart contribute their recovery shortfall.
        """
        health = self._supervisor.health
        lossy = [s for s in answered if health[s].lost_events]
        if not missing and not lossy:
            return None
        estimated = sum(
            max(0, self._shard_acked[s] - health[s].lost_events)
            for s in missing
        )
        estimated += sum(health[s].lost_events for s in lossy)
        return ScanCompleteness(
            missing_shards=tuple(sorted(missing)),
            lossy_shards=tuple(sorted(lossy)),
            estimated_missed_rows=estimated,
            total_shards=self.shards,
            watermark=watermark,
        )

    def _note_degraded(self, completeness: ScanCompleteness) -> None:
        self._completeness_seq += 1
        self._completeness_log.append((self._completeness_seq, completeness))
        if completeness.missing_shards:
            self._degraded_total += 1
            _M_DEGRADED_SCANS.inc()

    def completeness_mark(self) -> int:
        """Sequence mark for :meth:`completeness_since` (query layers)."""
        with self._lock:
            return self._completeness_seq

    def completeness_since(self, mark: int) -> Optional[Dict[str, object]]:
        """Merged completeness of scans recorded after ``mark``.

        ``None`` means every scan since the mark was complete.  Rows are
        estimated per shard at their maximum across the records, so a
        multi-scan query does not double-count one shard's absence.
        """
        with self._lock:
            records = [c for seq, c in self._completeness_log if seq > mark]
        if not records:
            return None
        missing = sorted({s for r in records for s in r.missing_shards})
        lossy = sorted({s for r in records for s in r.lossy_shards})
        estimated = max(r.estimated_missed_rows for r in records)
        return {
            "degraded": bool(missing),
            "missing_shards": missing,
            "lossy_shards": lossy,
            "estimated_missed_rows": estimated,
            "total_shards": self.shards,
            "scans_affected": len(records),
        }

    def scan_columns(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> BlockScanResult:
        """Scatter the filter, gather per-shard column slices.

        Every shard prunes/scans locally (compiled kernels, partition
        pruning, scan cache, cold tier) and replies with its survivors as
        one serialized block slice in (start_time, event_id) order,
        capped at this scan's committed watermark; parts from different
        shards are disjoint by construction, so no cross-shard dedup is
        needed.

        Fault behaviour: a shard that misses its deadline or dies is
        recovered and the scan re-issued (idempotent) under bounded
        backoff.  If it stays unavailable, ``fail_fast`` raises and
        ``degraded`` returns the survivors' rows with
        ``result.completeness`` set — still watermark-capped, so the
        partial answer is a consistent prefix of the committed stream on
        every shard that did answer.
        """
        trace = active_trace()
        observing = REGISTRY.enabled or trace is not None
        timings: Optional[Dict[int, float]] = {} if observing else None
        with self._lock:
            self._flush_entities_locked()
            serving, unavailable = self._available_targets()
            if unavailable and self.read_policy != "degraded":
                raise ShardError(
                    f"scan: shard(s) {sorted(unavailable)} unavailable "
                    f"(read policy fail_fast)"
                )
            watermark = self._committed
            message = (
                "scan",
                flt,
                watermark,
                parallel,
                use_entity_index,
                frozenset(self._torn) if self._torn else None,
            )
            payloads, failures = self._scatter_round(
                message, serving, self.scan_timeout_s, timings=timings
            )
            missing = sorted(set(unavailable) | set(failures))
            if missing and self.read_policy != "degraded":
                raise ShardTimeout(
                    f"scan: shard(s) {missing} unavailable after supervised "
                    f"recovery (read policy fail_fast)"
                )
            completeness = self._completeness_for(
                missing, sorted(payloads), watermark
            )
            if completeness is not None:
                self._note_degraded(completeness)
            if observing:
                self._scan_rounds += 1
                for shard, payload in payloads.items():
                    self._shard_bytes[shard] += payload_nbytes(payload)
                    self._shard_rows[shard] += payload["n"]
                    self._shard_recv_s[shard] += (timings or {}).get(
                        shard, 0.0
                    )
        if observing:
            total_bytes = sum(payload_nbytes(p) for p in payloads.values())
            total_rows = sum(p["n"] for p in payloads.values())
            if REGISTRY.enabled:
                _M_SHARD_SCANS.inc()
                for shard, payload in payloads.items():
                    label = str(shard)
                    _M_SHARD_BYTES.inc(payload_nbytes(payload), shard=label)
                    _M_SHARD_ROWS.inc(payload["n"], shard=label)
                    _M_SHARD_RTT.observe(
                        (timings or {}).get(shard, 0.0), shard=label
                    )
            if trace is not None:
                span = trace.current
                span.add("shards_scattered", len(payloads))
                span.add("shard_bytes_gathered", total_bytes)
                span.add("shard_rows_gathered", total_rows)
                if completeness is not None:
                    span.add(
                        "shards_missing", list(completeness.missing_shards)
                    )
                    span.add(
                        "estimated_missed_rows",
                        completeness.estimated_missed_rows,
                    )
        parts = [
            decode_result(payloads[shard]) for shard in sorted(payloads)
        ]
        result = BlockScanResult([s for s in parts if s is not None])
        result.completeness = completeness
        return result

    def scan(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> List[SystemEvent]:
        return self.scan_columns(flt, parallel, use_entity_index).events()

    def full_scan(self, flt: EventFilter) -> List[SystemEvent]:
        """Pruning- and index-free scatter scan (the soundness oracle)."""
        payloads = self._scatter(("full_scan", flt), self.scan_timeout_s)
        torn = self._torn
        merged: List[SystemEvent] = []
        for shard in sorted(payloads):
            merged.extend(
                e
                for e in decode_events(payloads[shard])
                if e.event_id not in torn
            )
        merged.sort(key=lambda e: (e.start_time, e.event_id))
        return merged

    def estimated_events(self, flt: EventFilter) -> int:
        return sum(self._scatter(("estimate", flt)).values())

    def time_range(self) -> Tuple[Optional[float], Optional[float]]:
        ranges = self._scatter(("time_range",)).values()
        mins = [lo for lo, _ in ranges if lo is not None]
        maxs = [hi for _, hi in ranges if hi is not None]
        return (min(mins) if mins else None, max(maxs) if maxs else None)

    # -- maintenance -------------------------------------------------------

    def compact(self, retention_days: Optional[int] = None) -> CompactionReport:
        """One synchronous compaction pass on every shard; merged report."""
        reports = self._scatter(
            ("compact", retention_days), self.scan_timeout_s
        )
        merged = CompactionReport()
        partitions: List[PartitionKey] = []
        for shard in sorted(reports):
            report = reports[shard]
            merged.events_migrated += report.events_migrated
            merged.segments_written += report.segments_written
            merged.cold_bytes += report.cold_bytes
            partitions.extend(report.partitions)
            if report.cutoff_day is not None:
                merged.cutoff_day = (
                    report.cutoff_day
                    if merged.cutoff_day is None
                    else max(merged.cutoff_day, report.cutoff_day)
                )
        merged.partitions = tuple(partitions)
        return merged

    def checkpoint(self) -> int:
        """Snapshot + WAL-truncate every shard; returns hot events written."""
        return sum(
            self._scatter(("checkpoint",), self.scan_timeout_s).values()
        )

    def close(self) -> None:
        """Stop and join every worker (idempotent).

        Shutdown escalates: a polite ``stop`` command with a bounded
        wait, then ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL)
        when the post-terminate join also times out.  A worker that
        survives all three is counted in ``leaked_workers`` (and the
        ``shard_health`` stats) instead of silently surviving the
        deployment.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._supervisor.stop()
            for shard in range(self.shards):
                if self._send(shard, ("stop",)):
                    self._recv_reply(shard, self.command_timeout_s)
        leaked = 0
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - ignores SIGTERM
                proc.kill()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - unkillable
                leaked += 1
        self.leaked_workers += leaked
        self._supervisor.leaked_workers += leaked
        for conn in self._conns:
            if conn is not None:
                conn.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._event_count

    def __iter__(self) -> Iterator[SystemEvent]:
        """All committed events, in (start_time, event_id) order."""
        return iter(self.scan_columns(EventFilter()).events())

    @property
    def supervisor(self) -> ShardSupervisor:
        return self._supervisor

    def metrics(self) -> List[dict]:
        """Per-worker metrics registry snapshots, one dict per shard.

        Registries are process-local, so the coordinator's own registry
        never sees a worker-side scan/cache/kernel counter; this pulls
        each worker's snapshot over the pipe (the ``metrics`` command).
        Unavailable shards report an ``{"unavailable": True}`` stub.
        """
        payloads = self._scatter(("metrics",), tolerate_missing=True)
        return [
            payloads.get(shard, {"unavailable": True})
            for shard in range(self.shards)
        ]

    def stats(self) -> Dict[str, object]:
        """Merged deployment view plus the per-shard detail behind it.

        ``per_shard`` keeps each worker's full stats dict (enriched with
        the coordinator-side ``scatter_gather`` accounting for that
        shard), ``scatter_gather`` is the merged roll-up — so skew
        (events per shard, bytes gathered per shard, straggler recv
        waits) survives the merge instead of being summed away — and
        ``shard_health`` is the supervisor's view (restarts, timeouts,
        retries, quarantines, lost-event estimates, leaked workers).
        Introspection never raises on a degraded deployment: an
        unavailable shard's stats are an ``{"unavailable": True}`` stub.
        """
        health = self._supervisor.summary()
        if self._closed:
            return {
                "events": self._event_count,
                "entities": len(self.registry),
                "shards": self.shards,
                "closed": True,
                "shard_health": health,
            }
        payloads = self._scatter(("stats",), tolerate_missing=True)
        worker_stats = [
            payloads.get(shard, {"unavailable": True})
            for shard in range(self.shards)
        ]
        with self._lock:
            rounds = self._scan_rounds
            gather = [
                {
                    "shard": shard,
                    "events_routed": self._shard_routed[shard],
                    "events_acked": self._shard_acked[shard],
                    "bytes_gathered": self._shard_bytes[shard],
                    "rows_gathered": self._shard_rows[shard],
                    "recv_seconds": self._shard_recv_s[shard],
                }
                for shard in range(self.shards)
            ]
        per_shard: List[Dict[str, object]] = []
        for shard, stats in enumerate(worker_stats):
            entry = dict(stats)
            entry["shard"] = shard
            entry["scatter_gather"] = gather[shard]
            per_shard.append(entry)
        return {
            "events": self._event_count,
            "entities": len(self.registry),
            "shards": self.shards,
            "partitions": sum(s.get("partitions", 0) for s in worker_stats),
            "shard_events": [s.get("events", 0) for s in worker_stats],
            "per_shard": per_shard,
            "shard_health": health,
            "scatter_gather": {
                "scan_rounds": rounds,
                "events_routed": sum(g["events_routed"] for g in gather),
                "bytes_gathered": sum(g["bytes_gathered"] for g in gather),
                "rows_gathered": sum(g["rows_gathered"] for g in gather),
                "recv_seconds": sum(g["recv_seconds"] for g in gather),
            },
        }
