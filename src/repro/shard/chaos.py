"""Deterministic fault injection for sharded deployments (ISSUE 9).

A :class:`FaultPlan` is an explicit, picklable list of faults — *this
shard*, at *this command count*, does *this* — so a failure
interleaving observed once can be replayed exactly.  Plans come from
three places, all landing in the same representation:

* programmatic: ``FaultPlan(faults=(Fault(...),))`` in tests;
* a spec string (``SystemConfig(shard_chaos=...)``, ``corpus --shards N
  --chaos SPEC``, or the ``AIQL_SHARD_CHAOS`` environment variable):
  either an integer seed (``"42"`` → :meth:`FaultPlan.generate`) or an
  explicit comma list like ``"kill@1:scan#0,wedge@0:batch#2x30"``;
* seeded generation: :meth:`FaultPlan.generate` draws a small plan from
  ``random.Random(seed)`` — same seed, same shard count, same plan,
  forever (the determinism property test pins this).

Workers run a :class:`ChaosAgent` over their command loop.  The agent
counts commands *per command type* when a fault names one (``scan#0`` =
the first scan this worker processes, immune to heartbeat pings and
entity broadcasts interleaving) and globally otherwise, and fires the
fault **before** the command executes:

* ``kill``  — ``SIGKILL`` to itself: no goodbye, no flush; the batch or
  scan in flight was never acknowledged, exactly like a machine loss;
* ``wedge`` — sleep far past every deadline: the worker is alive but
  unresponsive, which only deadline-based waits can detect;
* ``delay`` — sleep briefly, then answer normally: exercises the slow
  path without tripping recovery.

Faults belong to a worker's *first incarnation*: a supervised respawn
clears the spec's faults, so recovery is never re-killed by the plan
that proved it (bounded restart loops by construction).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Optional, Tuple

ACTIONS = ("kill", "wedge", "delay")

# A "wedge" must outlive any plausible command deadline; the supervisor
# SIGKILLs the worker long before this elapses.
WEDGE_DEFAULT_S = 3600.0
DELAY_DEFAULT_S = 0.05


class ChaosSpecError(ValueError):
    """Raised for unparseable chaos spec strings."""


@dataclass(frozen=True)
class Fault:
    """One injected fault: ``action`` on ``shard`` at ``at_command``.

    ``command`` scopes the count to one command type (``"scan"``,
    ``"batch"``, ...): ``at_command`` then indexes only commands of that
    type, which keeps plans deterministic even when heartbeats or entity
    broadcasts interleave.  ``None`` counts every command the worker
    processes.
    """

    shard: int
    action: str
    at_command: int = 0
    command: Optional[str] = None
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected {ACTIONS}"
            )
        if self.shard < 0:
            raise ValueError("fault shard must be >= 0")
        if self.at_command < 0:
            raise ValueError("fault at_command must be >= 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("fault duration_s must be > 0 (or None)")

    def to_spec(self) -> str:
        """The ``action@shard[:command]#count[xseconds]`` spec form."""
        where = f"{self.shard}:{self.command}" if self.command else str(self.shard)
        spec = f"{self.action}@{where}#{self.at_command}"
        if self.duration_s is not None:
            spec += f"x{self.duration_s:g}"
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults across a sharded deployment."""

    faults: Tuple[Fault, ...] = ()
    seed: Optional[int] = None

    @classmethod
    def generate(
        cls, seed: int, shards: int, kills: int = 1, delays: int = 1
    ) -> "FaultPlan":
        """Draw a small plan from ``Random(seed)`` — fully deterministic.

        ``kills`` workers die at an early scan or batch command and
        ``delays`` others answer slowly; victims are distinct while
        shards allow.
        """
        if shards < 1:
            raise ValueError("generate needs shards >= 1")
        rng = Random(seed)
        pool = list(range(shards))
        rng.shuffle(pool)
        faults = []
        for _ in range(min(kills, len(pool))):
            faults.append(
                Fault(
                    shard=pool.pop(),
                    action="kill",
                    command=rng.choice(("scan", "batch")),
                    at_command=rng.randrange(0, 3),
                )
            )
        for _ in range(delays):
            faults.append(
                Fault(
                    shard=pool.pop() if pool else rng.randrange(shards),
                    action="delay",
                    command="scan",
                    at_command=rng.randrange(0, 3),
                    duration_s=round(rng.uniform(0.01, 0.05), 4),
                )
            )
        return cls(faults=tuple(faults), seed=seed)

    @classmethod
    def from_spec(cls, spec: str, shards: int) -> "FaultPlan":
        """Parse a chaos spec string (an integer seed or explicit faults).

        Explicit form, comma-separated::

            kill@SHARD[:COMMAND]#COUNT
            wedge@SHARD[:COMMAND]#COUNT[xSECONDS]
            delay@SHARD[:COMMAND]#COUNT[xSECONDS]
        """
        text = spec.strip()
        if not text:
            return cls()
        try:
            return cls.generate(int(text), shards)
        except ValueError:
            pass
        faults = []
        for part in text.split(","):
            part = part.strip()
            try:
                action, rest = part.split("@", 1)
                duration = None
                if "x" in rest:
                    rest, raw = rest.rsplit("x", 1)
                    duration = float(raw)
                where, _, count = rest.partition("#")
                shard_text, _, command = where.partition(":")
                faults.append(
                    Fault(
                        shard=int(shard_text),
                        action=action.strip(),
                        command=command or None,
                        at_command=int(count) if count else 0,
                        duration_s=duration,
                    )
                )
            except (ValueError, TypeError) as exc:
                raise ChaosSpecError(
                    f"bad chaos fault {part!r} "
                    f"(want action@shard[:command]#count[xseconds]): {exc}"
                ) from None
        for fault in faults:
            if fault.shard >= shards:
                raise ChaosSpecError(
                    f"chaos fault targets shard {fault.shard} but the "
                    f"deployment has {shards}"
                )
        return cls(faults=tuple(faults))

    def for_shard(self, index: int) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.shard == index)

    def to_spec(self) -> str:
        return ",".join(fault.to_spec() for fault in self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)


def plan_from_env(shards: int) -> FaultPlan:
    """The ``AIQL_SHARD_CHAOS`` environment plan (empty when unset)."""
    spec = os.environ.get("AIQL_SHARD_CHAOS", "")
    return FaultPlan.from_spec(spec, shards) if spec.strip() else FaultPlan()


@dataclass
class ChaosAgent:
    """Applies a worker's faults as its command loop runs."""

    faults: Tuple[Fault, ...] = ()
    _total: int = 0
    _by_command: Dict[str, int] = field(default_factory=dict)

    def before(self, command: str) -> None:
        """Count ``command`` and fire any fault scheduled for it.

        Runs before the command executes, so a killed worker never
        acknowledges the in-flight request — the coordinator sees a dead
        pipe, exactly like a crashed machine.
        """
        typed = self._by_command.get(command, 0)
        self._by_command[command] = typed + 1
        total = self._total
        self._total = total + 1
        for fault in self.faults:
            if fault.command is None:
                if fault.at_command != total:
                    continue
            elif fault.command != command or fault.at_command != typed:
                continue
            self._fire(fault)

    @staticmethod
    def _fire(fault: Fault) -> None:
        if fault.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.action == "wedge":
            time.sleep(fault.duration_s or WEDGE_DEFAULT_S)
        else:
            time.sleep(fault.duration_s or DELAY_DEFAULT_S)
