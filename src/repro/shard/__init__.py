"""Sharded multi-process deployment (ISSUE 7).

The store partitioned by ``(day, agent-group)`` across N worker
processes — each with its own hot tier, WAL and cold segments — behind
a coordinator that routes ingest, scatter/gathers scans as serialized
column-block slices, and merges per-shard recovery.  Enabled through
``SystemConfig(shards=N)``.
"""

from repro.shard.coordinator import ShardedStore, ShardError
from repro.shard.worker import ShardSpec, shard_worker_main
from repro.shard.wire import (
    WireError,
    decode_events,
    decode_result,
    encode_events,
    encode_result,
)

__all__ = [
    "ShardError",
    "ShardSpec",
    "ShardedStore",
    "WireError",
    "decode_events",
    "decode_result",
    "encode_events",
    "encode_result",
    "shard_worker_main",
]
