"""Sharded multi-process deployment (ISSUE 7, fault tolerance ISSUE 9).

The store partitioned by ``(day, agent-group)`` across N worker
processes — each with its own hot tier, WAL and cold segments — behind
a coordinator that routes ingest, scatter/gathers scans as serialized
column-block slices, and merges per-shard recovery.  Enabled through
``SystemConfig(shards=N)``.

Deployments are supervised: every coordinator command runs under a
deadline, dead or wedged workers are quarantined, respawned and
re-admitted (WAL replay + entity-registry replay), idempotent commands
retry with bounded backoff, and the configured read policy decides
whether a scan missing a shard fails fast or answers degraded with a
:class:`ScanCompleteness` annotation.  A deterministic
:class:`FaultPlan` (``SystemConfig(shard_chaos=...)``, ``corpus
--chaos``, or ``AIQL_SHARD_CHAOS``) injects kills, wedges and delays at
exact command counts for reproducible failure drills.
"""

from repro.shard.chaos import (
    ChaosAgent,
    ChaosSpecError,
    Fault,
    FaultPlan,
    plan_from_env,
)
from repro.shard.coordinator import (
    ScanCompleteness,
    ShardCommitError,
    ShardError,
    ShardReadPolicy,
    ShardTimeout,
    ShardedStore,
)
from repro.shard.supervisor import ShardHealth, ShardSupervisor
from repro.shard.worker import ShardSpec, shard_worker_main
from repro.shard.wire import (
    WireError,
    decode_events,
    decode_result,
    encode_events,
    encode_result,
)

__all__ = [
    "ChaosAgent",
    "ChaosSpecError",
    "Fault",
    "FaultPlan",
    "ScanCompleteness",
    "ShardCommitError",
    "ShardError",
    "ShardHealth",
    "ShardReadPolicy",
    "ShardSpec",
    "ShardSupervisor",
    "ShardTimeout",
    "ShardedStore",
    "WireError",
    "decode_events",
    "decode_result",
    "encode_events",
    "encode_result",
    "plan_from_env",
    "shard_worker_main",
]
