"""Wire format for shard <-> coordinator traffic (ISSUE 7).

Two payload kinds cross the worker pipes, both plain picklable dicts of
``bytes``/tuples (no live objects, no code):

* **event batches** (coordinator -> shard ingest, shard -> coordinator
  ``full_scan`` replies): one compact tuple per event, with operation and
  object type as their *value strings* — enum identity never crosses a
  process boundary;
* **scan results** (shard -> coordinator): the survivor rows of a
  scatter scan as one serialized :class:`~repro.storage.blocks.ColumnBlock`
  slice in (start_time, event_id) order, columns packed with
  ``array.tobytes()`` at the blocks' native widths (``'q'``/``'d'``/one
  byte per dictionary code).

Dictionary soundness: op/otype codes are process-local (the enums'
definition order *today*) and agent codes are block-local, so the header
carries the **explicit code tables** of the sending process — the op and
otype value-string tables and the block's agent-id table.  The receiver
remaps code bytes through a 256-entry ``bytes.translate`` table built
from the header against its own process-local dictionaries, so two
processes can never desynchronize silently: an unknown value string
raises instead of aliasing to a wrong code.  The agent table needs no
remap at all — it *becomes* the decoded block's per-block dictionary.

The >256-distinct-agent case uses the same promoted representation as
live blocks: a 64-bit ``array('q')`` code column (one stable width on
every platform — the ISSUE 7 ``array('l')`` fix) flagged by ``"wide"``.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.entities import EntityType
from repro.model.events import Operation, SystemEvent
from repro.storage.blocks import (
    OP_CODE_BY_VALUE,
    OP_VALUE_BY_CODE,
    OTYPE_BY_CODE,
    OTYPE_CODE_BY_VALUE,
    BlockScanResult,
    ColumnBlock,
    Selection,
)

OTYPE_VALUE_BY_CODE: Tuple[str, ...] = tuple(t.value for t in OTYPE_BY_CODE)

_OP_BY_VALUE: Dict[str, Operation] = {op.value: op for op in Operation}
_OTYPE_BY_VALUE: Dict[str, EntityType] = {t.value: t for t in EntityType}


class WireError(ValueError):
    """Raised when a payload's dictionary tables cannot be reconciled."""


# -- event batches ----------------------------------------------------------


def encode_events(events: Sequence[SystemEvent]) -> List[tuple]:
    """Pack events as primitive tuples (ops/otypes by value string)."""
    return [
        (
            e.event_id,
            e.agent_id,
            e.seq,
            e.start_time,
            e.end_time,
            e.operation.value,
            e.subject_id,
            e.object_id,
            e.object_type.value,
            e.amount,
            e.failure_code,
        )
        for e in events
    ]


def decode_events(payload: Sequence[tuple]) -> Tuple[SystemEvent, ...]:
    """Rebuild :func:`encode_events` tuples into events, in order."""
    try:
        return tuple(
            SystemEvent(
                event_id=eid,
                agent_id=agent,
                seq=seq,
                start_time=t0,
                end_time=t1,
                operation=_OP_BY_VALUE[op],
                subject_id=subj,
                object_id=obj,
                object_type=_OTYPE_BY_VALUE[ot],
                amount=amt,
                failure_code=fc,
            )
            for eid, agent, seq, t0, t1, op, subj, obj, ot, amt, fc in payload
        )
    except KeyError as exc:
        raise WireError(f"unknown enum value in event batch: {exc}") from exc


# -- scan results -----------------------------------------------------------


def encode_result(
    result: BlockScanResult,
    watermark: Optional[int] = None,
    exclude: Optional[frozenset] = None,
) -> dict:
    """Serialize a scan's survivors as one wire block, sorted and capped.

    Rows ride in the result's merged (start_time, event_id) handle order —
    already deduplicated across tiers — and rows above ``watermark`` (the
    coordinator's committed snapshot at scatter time) are dropped here, so
    a batch another shard has not acknowledged yet can never leak into a
    gathered result half-committed.  ``exclude`` drops specific event ids:
    the coordinator's torn-commit set (slices acknowledged by some shards
    of a batch whose commit ultimately failed), which a later watermark
    advance must never expose.
    """
    if watermark is not None:
        handles = [h for h in result.handles() if h[1] <= watermark]
    else:
        handles = list(result.handles())
    if exclude:
        handles = [h for h in handles if h[1] not in exclude]
    # A single-part result rides in its block's physical order, which a
    # flat heap does not sort by time — the decoded block claims
    # time_sorted, so establish the order here (timsort: cheap on the
    # already-sorted multi-part case).
    handles.sort(key=lambda h: (h[0], h[1]))
    n = len(handles)
    event_ids = array("q")
    seqs = array("q")
    t0 = array("d")
    t1 = array("d")
    op_codes = bytearray()
    subject_ids = array("q")
    object_ids = array("q")
    otype_codes = bytearray()
    amounts = array("q")
    failure_codes = array("q")
    agent_code: Dict[int, int] = {}
    agents: List[int] = []
    agent_codes: List[int] = []
    for _, eid, block, p in handles:
        event_ids.append(eid)
        seqs.append(block.seqs[p])
        t0.append(block.t0[p])
        t1.append(block.t1[p])
        op_codes.append(block.op_codes[p])
        subject_ids.append(block.subject_ids[p])
        object_ids.append(block.object_ids[p])
        otype_codes.append(block.otype_codes[p])
        amounts.append(block.amounts[p])
        failure_codes.append(block.failure_codes[p])
        agent = block.agents[block.agent_codes[p]]
        code = agent_code.get(agent)
        if code is None:
            code = agent_code[agent] = len(agents)
            agents.append(agent)
        agent_codes.append(code)
    wide = len(agents) > 256
    return {
        "n": n,
        "eid": event_ids.tobytes(),
        "seq": seqs.tobytes(),
        "t0": t0.tobytes(),
        "t1": t1.tobytes(),
        "op": bytes(op_codes),
        "subj": subject_ids.tobytes(),
        "obj": object_ids.tobytes(),
        "ot": bytes(otype_codes),
        "amt": amounts.tobytes(),
        "fc": failure_codes.tobytes(),
        "agent": array("q", agent_codes).tobytes() if wide else bytes(agent_codes),
        "wide": wide,
        # Explicit dictionary tables: the sending process's code -> value
        # maps, so the receiver never assumes the two processes agree.
        "ops": tuple(OP_VALUE_BY_CODE),
        "ots": tuple(OTYPE_VALUE_BY_CODE),
        "agents": tuple(agents),
    }


def payload_nbytes(payload: dict) -> int:
    """Column bytes a :func:`encode_result` payload puts on the wire.

    Counts only the packed column buffers (the dominant term); the small
    header tables and scalars are ignored, so this is the figure the
    coordinator's per-shard gather metrics report as bytes gathered.
    """
    return sum(
        len(value)
        for value in payload.values()
        if isinstance(value, (bytes, bytearray))
    )


def _translate_table(
    sender: Sequence[str], local: Dict[str, int], kind: str
) -> Optional[bytes]:
    """256-byte code remap (sender code -> local code), None if identical."""
    if tuple(sender) == tuple(
        sorted(local, key=local.__getitem__)
    ) and len(sender) == len(local):
        return None
    table = bytearray(256)
    for code, value in enumerate(sender):
        try:
            table[code] = local[value]
        except KeyError:
            raise WireError(
                f"sender {kind} dictionary carries {value!r}, unknown to "
                f"this process"
            ) from None
    return bytes(table)


def _int_array(raw: bytes) -> "array[int]":
    out = array("q")
    out.frombytes(raw)
    return out


def _float_array(raw: bytes) -> "array[float]":
    out = array("d")
    out.frombytes(raw)
    return out


def decode_result(payload: dict) -> Optional[Selection]:
    """Rebuild a wire block into a local :class:`Selection`.

    Op/otype code bytes are remapped from the sender's tables to this
    process's dictionaries (a no-op ``None`` table when they already
    agree, the common case of equal builds); the agent table is installed
    verbatim as the block's own dictionary.  Returns ``None`` for an
    empty payload.
    """
    n = payload["n"]
    if not n:
        return None
    op_map = _translate_table(payload["ops"], OP_CODE_BY_VALUE, "operation")
    ot_map = _translate_table(payload["ots"], OTYPE_CODE_BY_VALUE, "object-type")
    block = ColumnBlock()
    block.event_ids = _int_array(payload["eid"])
    block.seqs = _int_array(payload["seq"])
    block.t0 = _float_array(payload["t0"])
    block.t1 = _float_array(payload["t1"])
    op = payload["op"] if op_map is None else payload["op"].translate(op_map)
    ot = payload["ot"] if ot_map is None else payload["ot"].translate(ot_map)
    block.op_codes = bytearray(op)
    block.otype_codes = bytearray(ot)
    block.subject_ids = _int_array(payload["subj"])
    block.object_ids = _int_array(payload["obj"])
    block.amounts = _int_array(payload["amt"])
    block.failure_codes = _int_array(payload["fc"])
    agents = tuple(payload["agents"])
    block.agents = agents
    block._agent_code = {agent: code for code, agent in enumerate(agents)}
    if payload["wide"]:
        block.agent_codes = _int_array(payload["agent"])
    else:
        block.agent_codes = bytearray(payload["agent"])
    block.op_universe = frozenset(block.op_codes)
    block.otype_universe = frozenset(block.otype_codes)
    block._rows = [None] * n
    # Rows arrive in (start_time, event_id) handle order: sorted by time.
    block.time_sorted = True
    block.min_time = block.t0[0]
    block.max_time = block.t0[-1]
    block.max_event_id = max(block.event_ids)
    return Selection(block, range(n))
