"""Shard worker: one process owning one horizontal slice of the store.

Each worker is a miniature single-process deployment — its own entity
registry, ingestor, hot backend (any of the four), and when the
deployment is durable, its own WAL, snapshot, cold segments and
background compactor under ``<data_dir>/shard-<i>``.  The coordinator
(:mod:`repro.shard.coordinator`) routes whole ``(day, agent-group)``
partitions to a worker, so partition pruning, compiled kernels, the
scan cache and the tiered cold path all run unchanged inside it.

Protocol: a strict request/response loop over one duplex pipe.  Every
command is answered with ``("ok", payload)`` or ``("err", message)`` —
errors are contained per command, never crash the worker, and surface
in the coordinator as raised exceptions.  On startup the worker sends
one *hello* carrying its recovery state (entity records in id order,
next event id, per-agent seq maxima, event count), which the
coordinator merges across shards; each shard replays its own WAL.

Workers are started with the ``spawn`` method: a forked child would
inherit the parent's shared-executor thread state (locks held by
threads that do not exist in the child) and can deadlock.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.model.entities import EntityRegistry
from repro.obs import REGISTRY, set_metrics_enabled
from repro.service.cache import ScanCache
from repro.service.pool import shutdown_shared_executor
from repro.shard.chaos import ChaosAgent, Fault
from repro.shard.wire import decode_events, encode_events, encode_result
from repro.storage.database import EventStore
from repro.storage.flat import FlatStore
from repro.storage.ingest import Ingestor
from repro.storage.kernels import set_columnar
from repro.storage.partition import PartitionScheme
from repro.storage.persist import entity_record, rebuild_entity
from repro.storage.segments import SegmentedStore


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to build its slice (picklable)."""

    index: int
    backend: str = "partitioned"
    agents_per_group: int = 10
    segments: int = 5
    distribution: str = "domain"
    columnar: bool = True
    scan_cache: bool = True
    scan_cache_entries: int = 512
    data_dir: Optional[str] = None
    retention_days: Optional[int] = None
    compact_interval_s: float = 30.0
    wal_sync: bool = True
    cold_cache_segments: int = 4
    cold_scan_cache_entries: int = 128
    metrics: bool = True
    # Deterministic fault injection (ISSUE 9): faults this worker fires
    # as its command loop runs.  Always () on a supervised respawn —
    # plans target a shard's first incarnation only.
    faults: Tuple[Fault, ...] = ()


def _build_hot(spec: ShardSpec, registry: EntityRegistry):
    if spec.backend == "partitioned":
        return EventStore(
            registry=registry,
            scheme=PartitionScheme(agents_per_group=spec.agents_per_group),
            scan_cache=ScanCache(spec.scan_cache_entries)
            if spec.scan_cache
            else None,
        )
    if spec.backend == "flat":
        return FlatStore(registry=registry)
    return SegmentedStore(
        registry=registry,
        segments=spec.segments,
        policy=spec.distribution,
    )


def shard_worker_main(conn, spec: ShardSpec) -> None:
    """Worker entry point (the ``spawn`` target)."""
    set_columnar(spec.columnar)
    # Metrics registries are process-local: the worker keeps its own, the
    # coordinator pulls a snapshot over the pipe with the ``metrics``
    # command instead of sharing mutable state across the spawn boundary.
    set_metrics_enabled(spec.metrics)
    ingestor = Ingestor()
    registry = ingestor.registry
    store = _build_hot(spec, registry)
    wal = None
    compactor = None
    report = None
    if spec.data_dir is not None:
        from repro.tier import Compactor, open_data_dir

        store, wal, report = open_data_dir(
            spec.data_dir,
            store,
            ingestor,
            retention_days=spec.retention_days,
            wal_sync=spec.wal_sync,
            cold_cache_segments=spec.cold_cache_segments,
            cold_scan_cache_entries=spec.cold_scan_cache_entries,
        )
        if spec.retention_days is not None:
            compactor = Compactor(
                store,
                retention_days=spec.retention_days,
                interval_s=spec.compact_interval_s,
            ).start()
    ingestor.attach(store)

    # Hello: this shard's recovered slice, for the coordinator's merge.
    # Entities are always the global observation-order prefix (every
    # entity is broadcast to every shard), so sorting by id is total.
    conn.send(
        (
            "ok",
            {
                "entities": [
                    entity_record(e)
                    for e in sorted(registry, key=lambda e: e.id)
                ],
                "next_event_id": report.next_event_id if report else 1,
                "seqs": ingestor.seq_maxima(),
                "events": len(store),
                "report": report,
            },
        )
    )

    chaos = ChaosAgent(faults=spec.faults)
    running = True
    while running:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        command, args = request[0], request[1:]
        # Fire scheduled faults *before* executing, so a killed worker
        # never acknowledges the in-flight command (like a machine loss).
        chaos.before(command)
        try:
            if command == "entities":
                for record in args[0]:
                    ingestor.observe(rebuild_entity(registry, record))
                reply = len(args[0])
            elif command == "batch":
                events = decode_events(args[0])
                ingestor.commit(events)
                reply = len(events)
            elif command == "scan":
                flt, watermark, parallel, use_entity_index, exclude = args
                result = store.scan_columns(
                    flt, parallel=parallel, use_entity_index=use_entity_index
                )
                reply = encode_result(
                    result, watermark=watermark, exclude=exclude
                )
            elif command == "full_scan":
                reply = encode_events(store.full_scan(args[0]))
            elif command == "estimate":
                estimator = getattr(store, "estimated_events", None)
                reply = estimator(args[0]) if estimator else len(store)
            elif command == "time_range":
                reply = store.time_range()
            elif command == "compact":
                reply = store.compact(args[0])
            elif command == "checkpoint":
                from repro.tier import checkpoint

                if spec.data_dir is None or wal is None:
                    raise RuntimeError("shard is not durable")
                reply = checkpoint(spec.data_dir, store, wal)
            elif command == "stats":
                stats = dict(store.stats())
                if wal is not None:
                    stats["wal"] = wal.stats()
                reply = stats
            elif command == "metrics":
                reply = REGISTRY.snapshot()
            elif command == "ping":
                reply = "pong"
            elif command == "stop":
                running = False
                reply = None
            else:
                raise ValueError(f"unknown shard command {command!r}")
        except BaseException:
            conn.send(("err", traceback.format_exc(limit=8)))
        else:
            conn.send(("ok", reply))

    if compactor is not None:
        compactor.stop()
    if wal is not None:
        wal.close()
    shutdown_shared_executor()
    conn.close()
