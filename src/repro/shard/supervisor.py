"""Shard supervision: liveness, quarantine, respawn, re-admission (ISSUE 9).

The :class:`ShardSupervisor` keeps a sharded deployment serving through
worker failures.  Detection is two-pronged:

* **process sentinels** — ``Process.is_alive()`` catches a worker the
  OS already reaped (SIGKILL, OOM, segfault);
* **deadlines** — every coordinator command waits with
  ``Connection.poll``-based timeouts, so a *wedged* worker (alive but
  stuck) surfaces as a timeout instead of hanging the investigation;
  a periodic heartbeat ping sweeps for both between queries.

Recovery of a dead or wedged shard is one supervised cycle:

1. **quarantine** — the shard's pipe is closed and the process
   SIGKILLed (a timed-out pipe may still carry a late reply; only a
   fresh pipe to a fresh process is trustworthy again);
2. **respawn** — a new worker starts from the same :class:`ShardSpec`
   (chaos faults cleared: plans target the first incarnation), and a
   durable shard replays its own WAL + snapshot + cold manifest on the
   way up, restoring every acknowledged batch;
3. **replay state** — the coordinator re-broadcasts its full entity
   registry so the new worker's dictionaries are id-identical again
   (the hello's event count is checked against the acked routing count
   to estimate rows a *non-durable* restart lost);
4. **re-admit** — the shard rejoins scatter rounds; restarts, retries,
   timeouts and time-to-recovery are all metered through the metrics
   registry and surface in ``stats()['shard_health']``.

Restarts are bounded (``SystemConfig(shard_max_restarts=...)``): a
crash-looping shard is eventually marked *failed* and left quarantined,
where degraded reads annotate it and fail-fast reads raise.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.retry import RetryPolicy
from repro.obs import REGISTRY
from repro.storage.persist import entity_record

_M_RESTARTS = REGISTRY.counter(
    "aiql_shard_restarts_total",
    "Supervised worker restarts",
    labelnames=("shard",),
)
_M_TIMEOUTS = REGISTRY.counter(
    "aiql_shard_timeouts_total",
    "Coordinator commands that hit their deadline",
    labelnames=("shard",),
)
_M_RETRIES = REGISTRY.counter(
    "aiql_shard_retries_total",
    "Idempotent command retries after a recovery",
    labelnames=("shard",),
)
_M_RECOVERY_SECONDS = REGISTRY.histogram(
    "aiql_shard_recovery_seconds",
    "Quarantine-to-readmission time of one supervised recovery",
)
_M_FAILED = REGISTRY.counter(
    "aiql_shard_failed_total",
    "Shards marked permanently failed (restart budget exhausted)",
)


@dataclass
class ShardHealth:
    """Mutable supervision record for one shard."""

    shard: int
    restarts: int = 0
    timeouts: int = 0
    retries: int = 0
    quarantined: bool = False
    failed: bool = False
    lost_events: int = 0
    last_recovery_s: Optional[float] = None
    last_error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "restarts": self.restarts,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "failed": self.failed,
            "lost_events": self.lost_events,
            "last_recovery_s": self.last_recovery_s,
            "last_error": self.last_error,
        }


class ShardSupervisor:
    """Watches a :class:`~repro.shard.coordinator.ShardedStore`'s workers.

    All mutation happens under the store's coordinator lock — either on
    the thread of the command that detected the failure, or on the
    supervisor's own heartbeat thread (which takes the lock itself).
    """

    def __init__(self, store, config) -> None:
        self._store = store
        self.max_restarts = config.shard_max_restarts
        self.heartbeat_interval_s = config.shard_heartbeat_interval_s
        self.retry_policy = RetryPolicy(attempts=config.shard_retry_attempts)
        self.health: List[ShardHealth] = [
            ShardHealth(shard=index) for index in range(store.shards)
        ]
        self.leaked_workers = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        if self.heartbeat_interval_s > 0 and self._thread is None:
            self._thread = threading.Thread(
                target=self._heartbeat_loop,
                name="aiql-shard-supervisor",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    # -- liveness ----------------------------------------------------------

    def available(self, shard: int) -> bool:
        health = self.health[shard]
        return (
            not health.quarantined
            and not health.failed
            and self._store._conns[shard] is not None
        )

    def note_timeout(self, shard: int) -> None:
        self.health[shard].timeouts += 1
        _M_TIMEOUTS.inc(shard=str(shard))

    def note_retry(self, shard: int) -> None:
        self.health[shard].retries += 1
        _M_RETRIES.inc(shard=str(shard))

    def _heartbeat_loop(self) -> None:  # pragma: no cover - thread timing
        while not self._stop.wait(self.heartbeat_interval_s):
            try:
                self.check()
            except Exception:
                # Supervision must never take the deployment down; the
                # next sweep (or the next command) sees the same state.
                pass

    def check(self) -> List[int]:
        """One liveness sweep: sentinel check + heartbeat ping per shard.

        Returns the shards that needed (and got) a recovery attempt.
        """
        store = self._store
        recovered = []
        with store._lock:
            if store._closed:
                return recovered
            for shard in range(store.shards):
                health = self.health[shard]
                if health.failed or health.quarantined:
                    continue
                proc = store._procs[shard]
                if proc is None or not proc.is_alive():
                    self.recover(shard, "sentinel: worker process dead")
                    recovered.append(shard)
                    continue
                status, _ = store._request(
                    shard, ("ping",), store.command_timeout_s
                )
                if status != "ok":
                    self.recover(shard, f"heartbeat {status}")
                    recovered.append(shard)
        return recovered

    # -- recovery ----------------------------------------------------------

    def recover(self, shard: int, reason: str) -> bool:
        """Quarantine → respawn → replay → re-admit one shard.

        Caller must hold the store's coordinator lock.  Returns ``True``
        when the shard is serving again; ``False`` leaves it quarantined
        (respawn failed) or failed (restart budget exhausted).
        """
        store = self._store
        health = self.health[shard]
        health.last_error = reason
        if health.failed:
            return False
        started = time.perf_counter()
        health.quarantined = True
        self._quarantine(shard)
        if health.restarts >= self.max_restarts:
            health.failed = True
            _M_FAILED.inc()
            return False
        health.restarts += 1
        _M_RESTARTS.inc(shard=str(shard))
        try:
            store._spawn_worker(shard, faults=())
            status, hello = store._recv_reply(shard, store.command_timeout_s)
            if status != "ok":
                raise OSError(f"respawn hello {status}")
            # Replay coordinator state the worker cannot recover alone:
            # the full entity registry (durable shards re-intern it as a
            # no-op; RAM-only shards need it to resolve entity filters).
            records = [
                entity_record(e)
                for e in sorted(store.registry, key=lambda e: e.id)
            ]
            store._conns[shard].send(("entities", records))
            status, _ = store._recv_reply(shard, store.command_timeout_s)
            if status != "ok":
                raise OSError(f"entity replay {status}")
        except (OSError, EOFError, BrokenPipeError) as exc:
            health.last_error = f"{reason}; respawn failed: {exc}"
            self._quarantine(shard)
            return False
        recovered_events = hello.get("events", 0)
        health.lost_events = max(
            0, store._shard_acked[shard] - recovered_events
        )
        elapsed = time.perf_counter() - started
        health.last_recovery_s = elapsed
        health.quarantined = False
        _M_RECOVERY_SECONDS.observe(elapsed)
        return True

    def _quarantine(self, shard: int) -> None:
        """Close the shard's pipe and SIGKILL its process (idempotent)."""
        store = self._store
        conn = store._conns[shard]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            store._conns[shard] = None
        proc = store._procs[shard]
        if proc is not None:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - unkillable worker
                    self.leaked_workers += 1
            store._procs[shard] = None

    # -- introspection -----------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """The ``stats()['shard_health']`` view."""
        store = self._store
        per_shard = []
        for shard, health in enumerate(self.health):
            entry = health.to_dict()
            proc = store._procs[shard]
            entry["alive"] = proc is not None and proc.is_alive()
            per_shard.append(entry)
        return {
            "read_policy": store.read_policy,
            "restarts": sum(h.restarts for h in self.health),
            "timeouts": sum(h.timeouts for h in self.health),
            "retries": sum(h.retries for h in self.health),
            "failed_shards": [h.shard for h in self.health if h.failed],
            "lost_events": sum(h.lost_events for h in self.health),
            "leaked_workers": self.leaked_workers,
            "degraded_scans": store._degraded_total,
            "per_shard": per_shard,
        }
