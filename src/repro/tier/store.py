"""Tiered store: a hot in-memory backend plus the cold on-disk tier.

:class:`TieredStore` wraps any of the four storage backends (partitioned,
flat, both MPP segment distributions) behind the same scan/ingest surface
the engine already uses, adding:

* a **cold-scan path** — scans merge the hot backend's results with the
  zone-map-pruned cold tier, deduplicated by event id, so a query whose
  window reaches past the retention horizon still answers correctly;
* **compaction** (:meth:`compact`) — committed events older than the
  retention horizon migrate out of RAM into compressed cold segments.

Migration safety: a partition's events are written and published cold
*before* they are removed from the hot backend, so a concurrent scan
always finds them in at least one tier; during the brief hand-off window
they are reachable in both, which the merge deduplicates.  Removal
rebuilds only the affected hot partitions/segments and invalidates the
scan cache for exactly those partition keys.  All mutations (ingest
appends, migration removals, checkpoints) serialize on
:attr:`writer_lock`, preserving the single-writer/multi-reader contract
of the wrapped backends — so a query never observes a partition
mid-migration, only pre- (hot), during- (both, deduplicated) or post-
(cold).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.model.events import SystemEvent
from repro.model.time import TimeWindow, day_of, day_start
from repro.obs.metrics import REGISTRY
from repro.storage.blocks import BlockScanResult
from repro.storage.filters import EventFilter
from repro.storage.partition import PartitionKey, PartitionScheme
from repro.tier.cold import ColdTier

_M_COMPACTIONS = REGISTRY.counter(
    "aiql_compaction_passes_total", "Hot-to-cold compaction passes that moved data"
)
_M_COMPACTED_EVENTS = REGISTRY.counter(
    "aiql_compaction_events_total", "Events migrated out of RAM into cold segments"
)
_M_COMPACTED_SEGMENTS = REGISTRY.counter(
    "aiql_compaction_segments_total", "Cold segments written by compaction"
)
_M_COMPACTED_BYTES = REGISTRY.counter(
    "aiql_compaction_bytes_total", "Compressed bytes written to cold segments"
)


@dataclass
class CompactionReport:
    """What one :meth:`TieredStore.compact` pass migrated."""

    cutoff_day: Optional[int] = None
    events_migrated: int = 0
    segments_written: int = 0
    partitions: Tuple[PartitionKey, ...] = ()
    cold_bytes: int = 0

    @property
    def moved(self) -> bool:
        return self.events_migrated > 0


class TieredStore:
    """Hot backend + cold tier behind the common store interface."""

    def __init__(
        self,
        hot,
        cold: ColdTier,
        retention_days: Optional[int] = None,
    ) -> None:
        if retention_days is not None and retention_days < 1:
            raise ValueError("retention_days must be >= 1 (or None)")
        self.hot = hot
        self.cold = cold
        self.retention_days = retention_days
        # Cold segments are keyed exactly like the partitioned backend's
        # hot partitions; non-partitioned backends reuse the default
        # scheme so their cold tier still prunes by (day, agent-group).
        self.partition_scheme: PartitionScheme = getattr(
            hot, "scheme", None
        ) or PartitionScheme()
        # Serializes ingest appends, migration removals and checkpoints:
        # the wrapped backends are single-writer, and compaction is a
        # second mutator that must never interleave with an append.
        self.writer_lock = threading.RLock()
        # Serializes whole compaction passes (the background thread vs a
        # manual compact()): two concurrent passes would each scan the
        # same expired events and write duplicate cold segments.
        self._compact_lock = threading.Lock()
        self.compactions = 0
        self.events_migrated = 0

    # -- delegation ---------------------------------------------------------

    def __getattr__(self, name: str):
        # Long-tail surface (registry, entity_index, scan_cache, scheme,
        # partition_keys, segment_sizes, ...) belongs to the hot backend.
        if name == "hot":  # not yet set: avoid recursing during __init__
            raise AttributeError(name)
        return getattr(self.hot, name)

    # -- ingestion ----------------------------------------------------------

    def register_entity(self, entity) -> None:
        self.hot.register_entity(entity)

    def add_event(self, event: SystemEvent) -> None:
        with self.writer_lock:
            self.hot.add_event(event)

    def add_batch(self, events: Sequence[SystemEvent]):
        with self.writer_lock:
            return self.hot.add_batch(events)

    # -- queries ------------------------------------------------------------

    @staticmethod
    def _merge(
        hot_events: List[SystemEvent], cold_events: List[SystemEvent]
    ) -> List[SystemEvent]:
        """Merge two (start_time, event_id)-sorted tier runs, deduplicated.

        Both tiers emit sorted runs (each store and the cold tier sort
        their results), so a mixed hot+cold window needs one linear merge
        — not a hot-id set plus a full re-sort of the concatenation.
        During a migration hand-off the same event can be reachable in
        both tiers; a duplicate pair shares its (start_time, event_id)
        sort key, so the copies meet at the merge point and the cold one
        drops (hot wins).
        """
        if not cold_events:
            return hot_events
        if not hot_events:
            return cold_events
        merged: List[SystemEvent] = []
        append = merged.append
        i = j = 0
        hot_len, cold_len = len(hot_events), len(cold_events)
        while i < hot_len and j < cold_len:
            hot = hot_events[i]
            cold = cold_events[j]
            hot_key = (hot.start_time, hot.event_id)
            cold_key = (cold.start_time, cold.event_id)
            if hot_key <= cold_key:
                append(hot)
                i += 1
                if hot_key == cold_key:
                    j += 1  # same event in both tiers: drop the cold copy
            else:
                append(cold)
                j += 1
        merged.extend(hot_events[i:])
        merged.extend(cold_events[j:])
        return merged

    def scan_columns(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> BlockScanResult:
        """Survivors across both tiers as block selections, deduplicated.

        Hot parts come first, so when a migration hand-off leaves an event
        reachable in both tiers, the merged handle list keeps the hot copy
        (the stable sort preserves part order for equal keys).
        """
        hot = self.hot.scan_columns(
            flt, parallel=parallel, use_entity_index=use_entity_index
        )
        cold_parts = self.cold.scan_selections(flt)
        if not cold_parts:
            return hot
        return BlockScanResult(list(hot.parts) + cold_parts, dedup=True)

    def scan(
        self,
        flt: EventFilter,
        parallel: bool = False,
        use_entity_index: bool = True,
    ) -> List[SystemEvent]:
        return self.scan_columns(
            flt, parallel=parallel, use_entity_index=use_entity_index
        ).events()

    def full_scan(self, flt: EventFilter) -> List[SystemEvent]:
        return self._merge(self.hot.full_scan(flt), self.cold.scan(flt))

    def estimated_events(self, flt: EventFilter) -> int:
        """Cost estimate spanning tiers: pruned hot size + unpruned cold
        zone-map counts (the scheduler's zone-map-aware cardinality input).
        """
        estimator = getattr(self.hot, "estimated_events", None)
        hot_bound = estimator(flt) if estimator is not None else len(self.hot)
        return hot_bound + self.cold.estimated_events(flt)

    # -- compaction ---------------------------------------------------------

    def compact(
        self,
        retention_days: Optional[int] = None,
        now: Optional[float] = None,
    ) -> CompactionReport:
        """Migrate committed events older than the retention horizon cold.

        The horizon is measured in *data time*: the newest ``retention_days``
        day ordinals (relative to ``now``, defaulting to the newest event
        across both tiers) stay hot; every committed event on an older day
        moves into compressed cold segments.  Publication order (cold
        first, then hot removal under :attr:`writer_lock`) keeps every
        event reachable by concurrent scans throughout.
        """
        days = retention_days if retention_days is not None else self.retention_days
        if days is None:
            raise ValueError(
                "no retention horizon: pass retention_days or configure one"
            )
        if days < 1:
            raise ValueError("retention_days must be >= 1")
        with self._compact_lock:
            return self._compact_locked(days, now)

    def _compact_locked(
        self, days: int, now: Optional[float]
    ) -> CompactionReport:
        if now is None:
            hot_max = self.hot.time_range()[1]
            cold_max = self.cold.time_range()[1]
            candidates = [t for t in (hot_max, cold_max) if t is not None]
            now = max(candidates) if candidates else None
        if now is None:
            return CompactionReport()  # empty store
        cutoff_day = day_of(now) - days + 1
        cutoff_ts = day_start(cutoff_day)
        flt = EventFilter(window=TimeWindow(end=cutoff_ts))
        # Committed-only by construction: the hot scan path filters by the
        # backend's committed-event watermark, so a batch mid-commit can
        # never be half-migrated.
        old = self.hot.scan(flt, parallel=False, use_entity_index=False)
        report = CompactionReport(cutoff_day=cutoff_day)
        if not old:
            return report
        by_key: Dict[PartitionKey, List[SystemEvent]] = {}
        for event in old:
            key = self.partition_scheme.key_for(event.agent_id, event.start_time)
            by_key.setdefault(key, []).append(event)
        for key in sorted(by_key, key=lambda k: (k.day, k.agent_group)):
            zone = self.cold.add_segment(key, by_key[key])
            report.segments_written += 1
            report.cold_bytes += (
                (self.cold.directory / zone.filename).stat().st_size
            )
        with self.writer_lock:
            removed = self.hot.remove_events(old)
        report.events_migrated = removed
        report.partitions = tuple(
            sorted(by_key, key=lambda k: (k.day, k.agent_group))
        )
        self.compactions += 1
        self.events_migrated += removed
        _M_COMPACTIONS.inc()
        _M_COMPACTED_EVENTS.inc(removed)
        _M_COMPACTED_SEGMENTS.inc(report.segments_written)
        _M_COMPACTED_BYTES.inc(report.cold_bytes)
        return report

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.hot) + self.cold.event_count

    def __iter__(self) -> Iterator[SystemEvent]:
        seen = set()
        for event in self.cold:
            seen.add(event.event_id)
            yield event
        for event in self.hot:
            if event.event_id not in seen:
                yield event

    def time_range(self) -> Tuple[Optional[float], Optional[float]]:
        hot_min, hot_max = self.hot.time_range()
        cold_min, cold_max = self.cold.time_range()
        mins = [t for t in (hot_min, cold_min) if t is not None]
        maxs = [t for t in (hot_max, cold_max) if t is not None]
        return (min(mins) if mins else None, max(maxs) if maxs else None)

    def stats(self) -> Dict[str, object]:
        stats = dict(self.hot.stats())
        stats["hot_events"] = len(self.hot)
        stats["events"] = len(self)
        stats["cold"] = self.cold.stats()
        stats["compactions"] = self.compactions
        stats["events_migrated"] = self.events_migrated
        return stats
