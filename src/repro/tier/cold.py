"""Cold tier: immutable, compressed, columnar segment files with zone maps.

The hot stores keep the recent retention window in RAM; everything older
lives here as *cold segments* — one immutable file per migrated hot
partition chunk, keyed by the ``(day, agent-group)`` partition key.  A
segment file is a zlib-compressed columnar encoding of its events (one
array per event attribute), and every segment carries a **zone map** in
the tier manifest:

* min/max start time and min/max event id,
* the agent-id, subject-id, object-id and operation sets,
* per-agent max sequence numbers (so crash recovery can fast-forward the
  ingestor without decompressing anything).

Zone maps let the scan path — and the scheduler's cost estimates — prune
cold segments *without opening them*: a query whose window, agent set,
operation set or scheduler-narrowed entity-id sets are disjoint from a
segment's zone map never pays the decompression.  Segments that do match
decompress through a small LRU so iterative investigations over the same
cold window stay cheap.

Segments that survive the zone maps decode into the same typed
:class:`~repro.storage.blocks.ColumnBlock` representation the hot tier
stores natively, and scans run the batch kernel straight on those columns
— set membership against dictionary codes, bisected windows, predicates
only on the surviving tail.  :class:`~repro.model.events.SystemEvent`
objects are lazily materialized row views; a segment none of whose rows
survive never pays object construction.  Per-segment survivor selections
are memoized in a scan cache keyed by ``(segment file, filter
fingerprint)`` plus the decoded block's generation (the same shared
invalidation policy as the hot partition-scan cache), which is the reason
iterative mixed hot+cold investigations stop re-scanning the cold tier
per query.

The manifest (``manifest.json``) is the tier's source of truth and is
rewritten atomically (temp file + rename); segment files are written
durably *before* the manifest references them, so a crash mid-migration
leaves at worst an orphaned segment file, never a manifest pointing at a
missing or torn segment.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.model.events import SystemEvent
from repro.obs.metrics import REGISTRY
from repro.obs.trace import active_trace
from repro.service.cache import ScanCache, cache_fingerprint
from repro.storage.blocks import BlockScanResult, ColumnBlock, Selection
from repro.storage.filters import EventFilter
from repro.storage.kernels import (
    ScanKernel,
    columnar_enabled,
    kernel_for,
    kernels_enabled,
)
from repro.storage.partition import PartitionKey

MANIFEST_VERSION = 1

_COLUMNS = ("eid", "a", "s", "t0", "t1", "op", "subj", "obj", "ot", "amt", "fc")


_M_COLD_CONSIDERED = REGISTRY.counter(
    "aiql_cold_segments_considered_total", "Cold segments examined by zone maps"
)
_M_COLD_PRUNED = REGISTRY.counter(
    "aiql_cold_segments_pruned_total", "Cold segments pruned without decoding"
)
_M_COLD_SCANNED = REGISTRY.counter(
    "aiql_cold_segments_scanned_total", "Cold segments decoded and scanned"
)
_M_COLD_ROWS = REGISTRY.counter(
    "aiql_cold_rows_selected_total", "Rows selected from cold segments"
)


class ColdTierError(ValueError):
    """Raised for unusable cold-tier directories or segment files."""


@dataclass(frozen=True)
class ZoneMap:
    """Per-segment pruning metadata; everything needed to skip a segment."""

    filename: str
    day: int
    agent_group: int
    count: int
    min_time: float
    max_time: float
    min_eid: int
    max_eid: int
    agents: frozenset
    operations: frozenset  # operation value strings
    object_types: frozenset  # entity-type value strings
    subjects: frozenset
    objects: frozenset
    seqs: Tuple[Tuple[int, int], ...]  # (agent_id, max seq) pairs

    @property
    def key(self) -> PartitionKey:
        return PartitionKey(day=self.day, agent_group=self.agent_group)

    def may_match(self, flt: EventFilter) -> bool:
        """False only when *no* event in the segment can satisfy ``flt``."""
        window = flt.window
        if window.start is not None and self.max_time < window.start:
            return False
        if window.end is not None and self.min_time >= window.end:
            return False
        if flt.agent_ids is not None and self.agents.isdisjoint(flt.agent_ids):
            return False
        if flt.operations is not None and self.operations.isdisjoint(
            op.value for op in flt.operations
        ):
            return False
        if (
            flt.object_type is not None
            and flt.object_type.value not in self.object_types
        ):
            return False
        if flt.subject_ids is not None and self.subjects.isdisjoint(
            flt.subject_ids
        ):
            return False
        if flt.object_ids is not None and self.objects.isdisjoint(flt.object_ids):
            return False
        return True

    def to_json(self) -> dict:
        return {
            "file": self.filename,
            "day": self.day,
            "group": self.agent_group,
            "count": self.count,
            "min_time": self.min_time,
            "max_time": self.max_time,
            "min_eid": self.min_eid,
            "max_eid": self.max_eid,
            "agents": sorted(self.agents),
            "ops": sorted(self.operations),
            "otypes": sorted(self.object_types),
            "subjects": sorted(self.subjects),
            "objects": sorted(self.objects),
            "seqs": [[agent, seq] for agent, seq in self.seqs],
        }

    @classmethod
    def from_json(cls, record: dict) -> "ZoneMap":
        return cls(
            filename=record["file"],
            day=record["day"],
            agent_group=record["group"],
            count=record["count"],
            min_time=record["min_time"],
            max_time=record["max_time"],
            min_eid=record["min_eid"],
            max_eid=record["max_eid"],
            agents=frozenset(record["agents"]),
            operations=frozenset(record["ops"]),
            object_types=frozenset(record["otypes"]),
            subjects=frozenset(record["subjects"]),
            objects=frozenset(record["objects"]),
            seqs=tuple((agent, seq) for agent, seq in record["seqs"]),
        )

    @classmethod
    def for_events(
        cls, filename: str, key: PartitionKey, events: Sequence[SystemEvent]
    ) -> "ZoneMap":
        seqs: Dict[int, int] = {}
        for event in events:
            if event.seq > seqs.get(event.agent_id, 0):
                seqs[event.agent_id] = event.seq
        return cls(
            filename=filename,
            day=key.day,
            agent_group=key.agent_group,
            count=len(events),
            min_time=min(e.start_time for e in events),
            max_time=max(e.start_time for e in events),
            min_eid=min(e.event_id for e in events),
            max_eid=max(e.event_id for e in events),
            agents=frozenset(e.agent_id for e in events),
            operations=frozenset(e.operation.value for e in events),
            object_types=frozenset(e.object_type.value for e in events),
            subjects=frozenset(e.subject_id for e in events),
            objects=frozenset(e.object_id for e in events),
            seqs=tuple(sorted(seqs.items())),
        )


def _encode_segment(events: Sequence[SystemEvent]) -> bytes:
    columns = {name: [] for name in _COLUMNS}
    for e in events:
        columns["eid"].append(e.event_id)
        columns["a"].append(e.agent_id)
        columns["s"].append(e.seq)
        columns["t0"].append(e.start_time)
        columns["t1"].append(e.end_time)
        columns["op"].append(e.operation.value)
        columns["subj"].append(e.subject_id)
        columns["obj"].append(e.object_id)
        columns["ot"].append(e.object_type.value)
        columns["amt"].append(e.amount)
        columns["fc"].append(e.failure_code)
    return zlib.compress(json.dumps(columns).encode("utf-8"), 6)


def _decode_columns(blob: bytes) -> Dict[str, list]:
    try:
        columns = json.loads(zlib.decompress(blob).decode("utf-8"))
    except (zlib.error, ValueError) as exc:
        raise ColdTierError(f"corrupt cold segment: {exc}") from exc
    return columns


class ColdTier:
    """The on-disk cold half of a :class:`~repro.tier.store.TieredStore`."""

    def __init__(
        self,
        directory,
        entity_lookup: Callable[[int], object],
        cache_segments: int = 4,
        scan_cache_entries: int = 128,
    ) -> None:
        if cache_segments < 1:
            raise ValueError("cache_segments must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._entity_lookup = entity_lookup
        self._zones: List[ZoneMap] = []
        self._next_id = 0
        self._cache_segments = cache_segments
        self._cache: "OrderedDict[str, ColumnBlock]" = OrderedDict()
        self._cache_lock = threading.Lock()
        # Stable block generation per segment file: filenames are never
        # reused and their contents are immutable, so a re-decode after an
        # LRU eviction restamps the fresh block with the generation of the
        # first decode.  Cached selections then survive evictions (the
        # shared generation check still guards them — it just compares
        # content identity, not object identity).
        self._generation_by_file: Dict[str, int] = {}
        # Per-segment scan results, keyed by (segment file, filter
        # fingerprint).  Segments are immutable so entries never need
        # invalidation; 0 disables.  This is the cold analogue of the hot
        # partition-scan cache and what keeps iterative investigations
        # over mixed hot+cold windows from re-scanning the cold tier.
        self.scan_cache: Optional[ScanCache] = (
            ScanCache(scan_cache_entries) if scan_cache_entries else None
        )
        # Pruning observability (the benchmark's zone-map probe).
        self.segments_considered = 0
        self.segments_pruned = 0
        self.segments_scanned = 0
        self._load_manifest()

    # -- manifest -----------------------------------------------------------

    @property
    def _manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def _load_manifest(self) -> None:
        path = self._manifest_path
        if not path.exists():
            return
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ColdTierError(f"corrupt cold-tier manifest: {exc}") from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise ColdTierError(
                f"unsupported cold-tier manifest version "
                f"{manifest.get('version')!r}"
            )
        self._zones = [ZoneMap.from_json(r) for r in manifest["segments"]]
        self._next_id = int(manifest.get("next_id", len(self._zones)))

    def _save_manifest(self, zones: Sequence[ZoneMap], next_id: int) -> None:
        manifest = {
            "version": MANIFEST_VERSION,
            "next_id": next_id,
            "segments": [zone.to_json() for zone in zones],
        }
        tmp = self._manifest_path.with_name("manifest.json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._manifest_path)

    # -- writes -------------------------------------------------------------

    def add_segment(
        self, key: PartitionKey, events: Sequence[SystemEvent]
    ) -> ZoneMap:
        """Durably write one immutable segment and publish it.

        Publication order: segment file (fsync'd) -> manifest (atomic
        rename) -> in-memory zone list.  Readers only ever see fully
        durable segments.
        """
        if not events:
            raise ValueError("cold segments must not be empty")
        events = tuple(
            sorted(events, key=lambda e: (e.start_time, e.event_id))
        )
        filename = f"seg-{key.day}-{key.agent_group}-{self._next_id:06d}.seg"
        zone = ZoneMap.for_events(filename, key, events)
        path = self.directory / filename
        tmp = path.with_name(filename + ".tmp")
        with tmp.open("wb") as handle:
            handle.write(_encode_segment(events))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._save_manifest(self._zones + [zone], self._next_id + 1)
        self._next_id += 1
        self._zones.append(zone)  # publish to readers last
        return zone

    # -- reads --------------------------------------------------------------

    def _decoded(self, zone: ZoneMap) -> ColumnBlock:
        with self._cache_lock:
            cached = self._cache.get(zone.filename)
            if cached is not None:
                self._cache.move_to_end(zone.filename)
                return cached
        blob = (self.directory / zone.filename).read_bytes()
        block = ColumnBlock.from_columns(_decode_columns(blob))
        block.generation = self._generation_by_file.setdefault(
            zone.filename, block.generation
        )
        with self._cache_lock:
            self._cache[zone.filename] = block
            self._cache.move_to_end(zone.filename)
            while len(self._cache) > self._cache_segments:
                self._cache.popitem(last=False)
        return block

    def _segment_events(self, zone: ZoneMap) -> List[SystemEvent]:
        return self._decoded(zone).events()

    def _scan_segment(
        self, block: ColumnBlock, flt: EventFilter, kernel: ScanKernel
    ) -> Selection:
        """One decoded segment's survivors (sorted: segments are stored sorted).

        The batch kernel runs straight on the decoded columns; the block's
        op/otype universes and agent dictionary give it the same vacuity
        hoisting the zone maps provided the old structural prefilter, and
        no :class:`SystemEvent` is built unless the per-event oracle path
        is active (``use_columnar(False)``).
        """
        lookup = self._entity_lookup
        candidates = range(len(block))
        if columnar_enabled():
            positions = kernel.select(block, candidates, lookup)
        else:
            test = kernel.test
            event_at = block.event_at
            positions = [i for i in candidates if test(event_at(i), lookup)]
        return Selection(block, positions)

    def scan_selections(self, flt: EventFilter) -> List[Selection]:
        """Per-segment survivor selections, zone-map pruned.

        Cached selections key on ``(segment file, filter fingerprint)``
        through the shared :class:`~repro.service.cache.ScanCache` policy
        plus the segment's stable block generation (segments are immutable,
        so every decode of a file restamps the same generation).  A cache
        hit therefore needs no decode at all — the cached selection pins
        its own block — and a generation mismatch can only mean the entry
        belongs to a different block, never a stale view of this one.
        """
        zones = list(self._zones)  # snapshot against concurrent publishes
        lookup = self._entity_lookup
        selections: List[Selection] = []
        kernel = kernel_for(flt) if kernels_enabled() else None
        if kernel is not None and kernel.always_false:
            return selections
        cache = self.scan_cache
        fingerprint = (
            cache_fingerprint(flt)
            if cache is not None and kernel is not None
            else None
        )
        considered = pruned = scanned = 0
        for zone in zones:
            self.segments_considered += 1
            considered += 1
            if not zone.may_match(flt):
                self.segments_pruned += 1
                pruned += 1
                continue
            self.segments_scanned += 1
            scanned += 1
            if kernel is None:
                # Interpreted oracle path (use_kernels(False)).
                block = self._decoded(zone)
                matches = flt.matches
                positions = []
                for i, event in enumerate(block.events()):
                    if matches(
                        event, lookup(event.subject_id), lookup(event.object_id)
                    ):
                        positions.append(i)
                selections.append(Selection(block, positions))
            elif fingerprint is not None and cache is not None:
                generation = self._generation_by_file.get(zone.filename)
                if generation is None:
                    # First touch in this process: decode so the cache
                    # entry records the segment's stable generation.
                    generation = self._decoded(zone).generation
                selections.append(
                    cache.get_or_compute(
                        zone.filename,
                        fingerprint,
                        lambda z=zone: self._scan_segment(
                            self._decoded(z), flt, kernel
                        ),
                        generation=generation,
                    )
                )
            else:
                selections.append(self._scan_segment(self._decoded(zone), flt, kernel))
        if considered:
            trace = active_trace()
            if REGISTRY.enabled or trace is not None:
                rows = sum(len(s) for s in selections)
                _M_COLD_CONSIDERED.inc(considered)
                _M_COLD_PRUNED.inc(pruned)
                _M_COLD_SCANNED.inc(scanned)
                _M_COLD_ROWS.inc(rows)
                if trace is not None:
                    span = trace.current
                    span.add("cold_segments_considered", considered)
                    span.add("cold_segments_pruned", pruned)
                    span.add("cold_segments_scanned", scanned)
                    span.add("cold_rows_selected", rows)
        return selections

    def scan(self, flt: EventFilter) -> List[SystemEvent]:
        """Matching cold events, zone-map pruned, sorted by (time, id)."""
        return BlockScanResult(self.scan_selections(flt)).events()

    def estimated_events(self, flt: EventFilter) -> int:
        """Upper bound on matching cold events, from zone maps alone."""
        return sum(z.count for z in list(self._zones) if z.may_match(flt))

    def contains_event(self, event: SystemEvent) -> bool:
        """True when ``event`` is already stored in a cold segment.

        Zone-map id ranges prefilter; only segments whose range contains
        the id are decompressed (and those decompressions hit the LRU).
        For bulk membership testing use :meth:`event_id_probe`.
        """
        return self.event_id_probe()(event)

    def event_id_probe(self):
        """A fast bulk membership tester (WAL replay / recovery dedup).

        Returns ``probe(event) -> bool``.  Zone-map id ranges prefilter,
        and each candidate segment's event-id set is materialized at most
        once for the probe's lifetime (outside the scan LRU), so testing
        every event of a long WAL or a large hot tier costs one
        decompression per *overlapping* segment — not one per event.
        Typical recovery replays recent (high-id) events against old
        (low-id) segments and decompresses nothing at all.
        """
        zones = list(self._zones)
        id_sets: Dict[str, frozenset] = {}

        def probe(event: SystemEvent) -> bool:
            for zone in zones:
                if not (zone.min_eid <= event.event_id <= zone.max_eid):
                    continue
                if event.agent_id not in zone.agents:
                    continue
                ids = id_sets.get(zone.filename)
                if ids is None:
                    # The raw id column suffices: no row views are built.
                    ids = frozenset(self._decoded(zone).event_ids)
                    id_sets[zone.filename] = ids
                if event.event_id in ids:
                    return True
            return False

        return probe

    # -- introspection ------------------------------------------------------

    @property
    def zones(self) -> Tuple[ZoneMap, ...]:
        return tuple(self._zones)

    @property
    def event_count(self) -> int:
        return sum(z.count for z in self._zones)

    def max_event_id(self) -> int:
        return max((z.max_eid for z in self._zones), default=0)

    def seq_maxima(self) -> Dict[int, int]:
        """Per-agent max sequence numbers across all segments (manifest only)."""
        maxima: Dict[int, int] = {}
        for zone in self._zones:
            for agent, seq in zone.seqs:
                if seq > maxima.get(agent, 0):
                    maxima[agent] = seq
        return maxima

    def time_range(self) -> Tuple[Optional[float], Optional[float]]:
        if not self._zones:
            return (None, None)
        return (
            min(z.min_time for z in self._zones),
            max(z.max_time for z in self._zones),
        )

    def __iter__(self) -> Iterator[SystemEvent]:
        for zone in sorted(
            list(self._zones), key=lambda z: (z.day, z.agent_group, z.min_eid)
        ):
            yield from self._segment_events(zone)

    def prune_rate(self) -> float:
        """Fraction of considered segments skipped via zone maps."""
        if not self.segments_considered:
            return 0.0
        return self.segments_pruned / self.segments_considered

    def size_bytes(self) -> int:
        return sum(
            (self.directory / z.filename).stat().st_size for z in self._zones
        )

    def stats(self) -> dict:
        out = {
            "segments": len(self._zones),
            "events": self.event_count,
            "bytes": self.size_bytes(),
            "segments_considered": self.segments_considered,
            "segments_pruned": self.segments_pruned,
            "segments_scanned": self.segments_scanned,
        }
        if self.scan_cache is not None:
            out["scan_cache"] = self.scan_cache.stats()
        return out
