"""Write-ahead log: batch durability for live ingestion.

Every committed stream batch is appended here *before* it publishes to the
in-memory stores (the :class:`~repro.storage.ingest.Ingestor` calls
:meth:`WriteAheadLog.append` first in its commit fan-out).  After a crash,
replaying the log over the last snapshot reconstructs exactly the batches
whose commits were acknowledged — an unacknowledged batch is either absent
from the log or detected as a torn tail record and discarded.

Record format: one JSON line per committed batch ::

    {"n": <record #>, "eid": <max event id>,
     "ents": [<entity records>], "evts": [<event records>],
     "crc": <crc32 of the record without "crc">}

Entity/event records reuse the snapshot codecs of
:mod:`repro.storage.persist`, so a WAL record and a snapshot line are the
same wire format.  The checksum (plus the trailing newline) is how replay
distinguishes a record that was cut short by a crash from a corrupt log:
replay stops cleanly at the first torn/invalid line, which by the
append-fsync-acknowledge ordering can only ever be the unacknowledged tail.

New entities observed since the previous append ride in the same record as
the events that first reference them, so a batch and its entity closure are
durable atomically.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.model.entities import Entity, EntityRegistry
from repro.model.events import SystemEvent
from repro.obs.metrics import REGISTRY
from repro.storage.persist import (
    entity_record,
    event_record,
    rebuild_entity,
    rebuild_event,
)


_M_WAL_RECORDS = REGISTRY.counter(
    "aiql_wal_records_total", "WAL batch records appended"
)
_M_WAL_EVENTS = REGISTRY.counter(
    "aiql_wal_events_total", "Events made durable through the WAL"
)
_M_WAL_BYTES = REGISTRY.counter(
    "aiql_wal_bytes_total", "Bytes appended to the WAL"
)
_M_WAL_TORN = REGISTRY.counter(
    "aiql_wal_torn_tails_total",
    "Torn (unacknowledged) WAL tails detected and discarded",
)
_M_WAL_REPLAY_EVENTS = REGISTRY.counter(
    "aiql_wal_replay_events_total", "Events applied during WAL replay"
)
_M_WAL_REPLAY_SKIPPED = REGISTRY.counter(
    "aiql_wal_replay_skipped_events_total",
    "Replayed events skipped as snapshot-covered or cold-migrated",
)


class WALError(ValueError):
    """Raised for unusable write-ahead logs (not for torn tails)."""


@dataclass(frozen=True)
class WALRecord:
    """One replayed batch: decoded entity records and events."""

    number: int
    max_event_id: int
    entity_records: tuple
    events: tuple


def _checksum(payload: str) -> int:
    return zlib.crc32(payload.encode("utf-8"))


class WriteAheadLog:
    """Append-only, checksummed batch log with torn-tail detection."""

    def __init__(self, path, sync: bool = True) -> None:
        self.path = Path(path)
        self.sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.torn_tails_detected = 0
        self.torn_bytes_discarded = 0
        self.replay_events_applied = 0
        self.replay_events_skipped = 0
        last_number, valid_bytes = self._scan_valid_prefix()
        # Truncate a torn tail *before* appending: a record written after
        # a leftover partial line would be unreachable forever (replay
        # stops at the first torn line), silently losing every commit
        # acknowledged after the recovery.
        if self.path.exists() and self.path.stat().st_size > valid_bytes:
            self.torn_tails_detected += 1
            self.torn_bytes_discarded += self.path.stat().st_size - valid_bytes
            _M_WAL_TORN.inc()
            with self.path.open("rb+") as handle:
                handle.truncate(valid_bytes)
        self._handle = self.path.open("a", encoding="utf-8")
        self.records_appended = 0
        self.events_appended = 0
        self._next_number = last_number + 1

    def _scan_valid_prefix(self) -> tuple:
        """(last record number, byte length of the valid record prefix)."""
        last, valid = 0, 0
        if not self.path.exists():
            return last, valid
        with self.path.open("rb") as handle:
            for raw in handle:
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError:
                    break  # torn mid-write
                record = self._decode(line)
                if record is None:
                    break
                if record["n"] != last + 1 and last:
                    raise WALError(
                        f"write-ahead log {self.path}: record {record['n']} "
                        f"out of order (expected {last + 1})"
                    )
                last = record["n"]
                valid += len(raw)
        return last, valid

    # -- write path ---------------------------------------------------------

    def append(
        self,
        entities: Sequence[Entity],
        events: Sequence[SystemEvent],
    ) -> int:
        """Durably append one committed batch; returns its record number.

        The record is flushed (and fsync'd when ``sync``) before this
        returns, so an acknowledged commit survives any later crash.
        """
        if self._handle.closed:
            raise WALError(f"write-ahead log {self.path} is closed")
        number = self._next_number
        record = {
            "n": number,
            "eid": max((e.event_id for e in events), default=0),
            "ents": [entity_record(entity) for entity in entities],
            "evts": [event_record(event) for event in events],
        }
        payload = json.dumps(record, sort_keys=True)
        record["crc"] = _checksum(payload)
        line = json.dumps(record, sort_keys=True) + "\n"
        self._handle.write(line)
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        self._next_number = number + 1
        self.records_appended += 1
        self.events_appended += len(events)
        _M_WAL_RECORDS.inc()
        _M_WAL_EVENTS.inc(len(events))
        _M_WAL_BYTES.inc(len(line))
        return number

    # -- read path ----------------------------------------------------------

    def replay(self) -> Iterator[WALRecord]:
        """Yield durable records in append order.

        Stops cleanly at the first torn or checksum-failing line — the
        unacknowledged tail a crash mid-append leaves behind.  Record
        numbers are verified monotone so a corrupted middle cannot be
        silently skipped.
        """
        if not self.path.exists():
            return
        expected: Optional[int] = None
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                record = self._decode(line)
                if record is None:
                    return  # torn tail: everything after it is unacknowledged
                if expected is not None and record["n"] != expected:
                    raise WALError(
                        f"write-ahead log {self.path}: record {record['n']} "
                        f"out of order (expected {expected})"
                    )
                expected = record["n"] + 1
                yield WALRecord(
                    number=record["n"],
                    max_event_id=record["eid"],
                    entity_records=tuple(record["ents"]),
                    events=tuple(rebuild_event(r) for r in record["evts"]),
                )

    @staticmethod
    def _decode(line: str) -> Optional[dict]:
        if not line.endswith("\n"):
            return None  # cut short mid-write
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        crc = record.pop("crc", None)
        if crc != _checksum(json.dumps(record, sort_keys=True)):
            return None
        if not all(key in record for key in ("n", "eid", "ents", "evts")):
            return None
        return record

    def replay_into(
        self,
        registry: EntityRegistry,
        stores: Sequence,
        after_event_id: int = 0,
        skip_event: Optional[callable] = None,
    ) -> int:
        """Apply durable records to ``stores``; returns events applied.

        Events with ids at or below ``after_event_id`` (already covered by
        the snapshot the log is being replayed over) are skipped, as are
        events for which ``skip_event`` returns true (already migrated to
        the cold tier) — which is what makes replay idempotent.  Entities
        re-intern through the shared registry, so replaying a record twice
        is harmless.
        """
        applied = 0
        for record in self.replay():
            for raw in record.entity_records:
                entity = rebuild_entity(registry, raw)
                for store in stores:
                    store.register_entity(entity)
            batch = [
                event
                for event in record.events
                if event.event_id > after_event_id
                and (skip_event is None or not skip_event(event))
            ]
            skipped = len(record.events) - len(batch)
            if skipped:
                # Snapshot-covered or cold-migrated: idempotence at work,
                # but surfaced — a replay skipping *everything* is how a
                # stale-snapshot misconfiguration shows up.
                self.replay_events_skipped += skipped
                _M_WAL_REPLAY_SKIPPED.inc(skipped)
            if not batch:
                continue
            for store in stores:
                add_batch = getattr(store, "add_batch", None)
                if add_batch is not None:
                    add_batch(batch)
                else:
                    for event in batch:
                        store.add_event(event)
            applied += len(batch)
        if applied:
            self.replay_events_applied += applied
            _M_WAL_REPLAY_EVENTS.inc(applied)
        return applied

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Truncate the log (called after a successful checkpoint).

        Safe ordering is the caller's contract: the snapshot covering every
        logged event must be durably in place *before* the reset, so a
        crash in between replays a log whose records are all snapshot-
        covered no-ops.
        """
        self._handle.close()
        self._handle = self.path.open("w", encoding="utf-8")
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        self._next_number = 1

    def size_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "bytes": self.size_bytes(),
            "records_appended": self.records_appended,
            "events_appended": self.events_appended,
            "torn_tails_detected": self.torn_tails_detected,
            "torn_bytes_discarded": self.torn_bytes_discarded,
            "replay_events_applied": self.replay_events_applied,
            "replay_events_skipped": self.replay_events_skipped,
        }
