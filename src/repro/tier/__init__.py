"""Durable tiered storage: WAL, compressed cold segments, compaction.

The paper's deployment keeps "at least a 0.5-1 year worth of data" on
disk; this package is our reproduction of that capacity/durability story
over the in-memory backends:

* :mod:`repro.tier.wal` — every committed stream batch is durable before
  it publishes; replay over the last snapshot recovers a crash.
* :mod:`repro.tier.cold` — immutable, compressed, columnar segments with
  zone maps that prune cold scans (and cost estimates) without
  decompression.
* :mod:`repro.tier.store` — :class:`TieredStore` wraps any hot backend
  with the cold-scan path and the migration machinery.
* :mod:`repro.tier.compactor` — the background retention enforcer.
* :mod:`repro.tier.recovery` — data-dir layout, ``open_data_dir`` (fresh
  start and crash recovery are one code path) and ``checkpoint``.
"""

from repro.tier.cold import ColdTier, ColdTierError, ZoneMap
from repro.tier.compactor import Compactor
from repro.tier.recovery import (
    RecoveryReport,
    checkpoint,
    cold_path,
    open_data_dir,
    snapshot_path,
    wal_path,
)
from repro.tier.store import CompactionReport, TieredStore
from repro.tier.wal import WALError, WALRecord, WriteAheadLog

__all__ = [
    "ColdTier",
    "ColdTierError",
    "ZoneMap",
    "Compactor",
    "CompactionReport",
    "TieredStore",
    "WALError",
    "WALRecord",
    "WriteAheadLog",
    "RecoveryReport",
    "open_data_dir",
    "checkpoint",
    "snapshot_path",
    "wal_path",
    "cold_path",
]
