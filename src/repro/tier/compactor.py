"""Background compactor: periodic hot-to-cold migration.

One daemon thread per deployment wakes on a fixed interval, asks the
tiered store to migrate everything older than the retention horizon
(:meth:`~repro.tier.store.TieredStore.compact`), and optionally triggers a
checkpoint afterwards so the snapshot+WAL pair shrinks along with the hot
tier.  Compaction runs concurrently with queries (migration is
reader-safe by construction) and serializes with the ingest writer on the
store's writer lock only for the brief hot-removal step.

Errors are contained: a failing pass is recorded on :attr:`last_error`
and the loop keeps running — a transiently full disk must not kill the
deployment's retention enforcement.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.tier.store import CompactionReport, TieredStore


class Compactor:
    """Periodic background migration of expired hot partitions."""

    def __init__(
        self,
        store: TieredStore,
        retention_days: int,
        interval_s: float = 30.0,
        after_compact: Optional[Callable[[CompactionReport], None]] = None,
    ) -> None:
        if retention_days < 1:
            raise ValueError("retention_days must be >= 1")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.store = store
        self.retention_days = retention_days
        self.interval_s = interval_s
        self.after_compact = after_compact
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.passes = 0
        self.last_report: Optional[CompactionReport] = None
        self.last_error: Optional[BaseException] = None

    def run_once(self) -> CompactionReport:
        """One synchronous compaction pass (also the thread body)."""
        report = self.store.compact(self.retention_days)
        self.passes += 1
        self.last_report = report
        self.last_error = None  # a healthy pass clears a stale failure
        if report.moved and self.after_compact is not None:
            self.after_compact(report)
        return report

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run_once()
            except BaseException as exc:  # keep enforcing retention
                self.last_error = exc

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Compactor":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="tier-compactor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_pass: bool = False) -> None:
        """Stop the thread; with ``final_pass`` run one last migration."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if final_pass:
            self.run_once()

    def stats(self) -> dict:
        return {
            "running": self.running,
            "passes": self.passes,
            "retention_days": self.retention_days,
            "interval_s": self.interval_s,
            "last_migrated": (
                self.last_report.events_migrated if self.last_report else 0
            ),
            "error": repr(self.last_error) if self.last_error else None,
        }
