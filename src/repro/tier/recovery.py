"""Durable deployment state: data-dir layout, recovery and checkpoints.

A durable AIQL deployment keeps everything it needs to survive a crash in
one *data directory*::

    <data_dir>/
        snapshot.jsonl    # last checkpoint: full registry + hot events
        wal.log           # batches committed since that checkpoint
        cold/             # immutable compressed segments + manifest.json

:func:`open_data_dir` is the single entry point for both a fresh start
and crash recovery — an empty directory recovers to an empty system, a
populated one replays ``snapshot + WAL`` into the hot backend, attaches
the cold tier, reconciles a half-finished migration, and fast-forwards
the ingestor's id/sequence counters so new events continue the stream
exactly where the last durable commit left it.

Idempotence: WAL records whose events are covered by the snapshot (id at
or below the snapshot's max event id) or already migrated cold are
skipped, so replaying any prefix-plus-suffix of the log converges to the
same state.  :func:`checkpoint` writes the snapshot atomically *before*
truncating the WAL, so a crash between the two replays a log of no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.storage.ingest import Ingestor
from repro.storage.persist import load_snapshot, save_snapshot
from repro.tier.cold import ColdTier
from repro.tier.store import TieredStore
from repro.tier.wal import WriteAheadLog

SNAPSHOT_NAME = "snapshot.jsonl"
WAL_NAME = "wal.log"
COLD_DIR_NAME = "cold"


def snapshot_path(data_dir) -> Path:
    return Path(data_dir) / SNAPSHOT_NAME


def wal_path(data_dir) -> Path:
    return Path(data_dir) / WAL_NAME


def cold_path(data_dir) -> Path:
    return Path(data_dir) / COLD_DIR_NAME


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`open_data_dir` found and rebuilt."""

    snapshot_events: int
    wal_events_replayed: int
    cold_events: int
    duplicates_reconciled: int
    next_event_id: int

    @property
    def total_events(self) -> int:
        return self.snapshot_events + self.wal_events_replayed + self.cold_events

    def to_dict(self) -> dict:
        return {
            "snapshot_events": self.snapshot_events,
            "wal_events_replayed": self.wal_events_replayed,
            "cold_events": self.cold_events,
            "duplicates_reconciled": self.duplicates_reconciled,
            "next_event_id": self.next_event_id,
        }


def open_data_dir(
    data_dir,
    hot,
    ingestor: Ingestor,
    retention_days: Optional[int] = None,
    wal_sync: bool = True,
    cold_cache_segments: int = 4,
    cold_scan_cache_entries: int = 128,
) -> Tuple[TieredStore, WriteAheadLog, RecoveryReport]:
    """Open (or create) a durable data directory over a fresh hot backend.

    Returns the wired ``(tiered store, write-ahead log, recovery report)``
    triple; the caller owns attaching the tiered store to the ingestor's
    fan-out.  ``hot`` and ``ingestor`` must be fresh and share a registry.
    """
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    registry = ingestor.registry
    cold = ColdTier(
        cold_path(data_dir),
        registry.get,
        cache_segments=cold_cache_segments,
        scan_cache_entries=cold_scan_cache_entries,
    )

    snapshot_events = 0
    snapshot = snapshot_path(data_dir)
    if snapshot.exists():
        snapshot_events = load_snapshot(snapshot, registry, [hot])
    snapshot_max = 0
    for event in hot:
        if event.event_id > snapshot_max:
            snapshot_max = event.event_id

    # One probe for the whole recovery: each cold segment's id set is
    # materialized at most once, however many WAL/hot events are tested.
    in_cold = cold.event_id_probe() if cold.event_count else None
    wal = WriteAheadLog(wal_path(data_dir), sync=wal_sync)
    wal_events = wal.replay_into(
        registry,
        [hot],
        after_event_id=snapshot_max,
        skip_event=in_cold,
    )

    # Reconcile a crash between cold publication and hot removal: events
    # reachable in both tiers leave the hot backend now, so compaction
    # and len() converge instead of re-migrating duplicates forever.
    duplicates = 0
    if in_cold is not None:
        doubled = [e for e in hot if in_cold(e)]
        if doubled:
            duplicates = hot.remove_events(doubled)

    # Fast-forward the ingestor: ids continue after the newest durable
    # event, per-agent sequence numbers after the newest in either tier.
    max_eid = cold.max_event_id()
    seqs: Dict[int, int] = dict(cold.seq_maxima())
    hot_events = 0
    for event in hot:
        hot_events += 1
        if event.event_id > max_eid:
            max_eid = event.event_id
        if event.seq > seqs.get(event.agent_id, 0):
            seqs[event.agent_id] = event.seq
    ingestor.resume(
        next_event_id=max_eid + 1,
        seqs=seqs,
        events_ingested=hot_events + cold.event_count,
    )

    store = TieredStore(hot, cold, retention_days=retention_days)
    ingestor.attach_wal(
        wal,
        logged_entity_ids=(e.id for e in registry),
        lock=store.writer_lock,
    )
    report = RecoveryReport(
        snapshot_events=snapshot_events,
        wal_events_replayed=wal_events,
        cold_events=cold.event_count,
        duplicates_reconciled=duplicates,
        next_event_id=max_eid + 1,
    )
    return store, wal, report


def checkpoint(data_dir, store: TieredStore, wal: WriteAheadLog) -> int:
    """Snapshot the registry + hot tier, then truncate the WAL.

    Runs under the store's writer lock so the snapshot is an exact,
    batch-consistent image of the hot tier (cold segments are durable on
    their own and are deliberately *not* re-written).  Ordering makes the
    pair crash-safe: the snapshot replaces its predecessor atomically
    before the WAL resets, and a crash in between merely replays
    snapshot-covered records as no-ops.  Returns hot events written.
    """
    with store.writer_lock:
        written = save_snapshot(
            snapshot_path(data_dir), store.registry, iter(store.hot)
        )
        wal.reset()
    return written
