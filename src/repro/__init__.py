"""AIQL: Enabling Efficient Attack Investigation from System Monitoring Data.

Full Python reproduction of Gao et al., USENIX ATC 2018.  The package
provides:

* :class:`~repro.core.system.AIQLSystem` -- the end-to-end system: optimized
  storage, the AIQL language, and the relationship-based query engine;
* :mod:`repro.lang` -- lexer, parser, semantic compiler for the AIQL query
  language (multievent, dependency and anomaly syntax);
* :mod:`repro.storage` -- partitioned/flat/MPP event stores;
* :mod:`repro.engine` -- relationship-based and fetch-and-filter schedulers,
  anomaly sliding windows, dependency rewriting, parallel execution;
* :mod:`repro.baselines` -- the PostgreSQL-, Neo4j- and Greenplum-like
  comparison systems and the SQL/Cypher/SPL conciseness corpus;
* :mod:`repro.workload` -- the synthetic enterprise and the paper's attack
  scenarios (APT case study, dependency chains, malware, abnormal behavior);
* :mod:`repro.service` -- the concurrent query service: shared executor,
  partition-scan cache, batched/deduplicated query submission;
* :mod:`repro.api` -- the versioned public wire schema (v1): query/page/
  alert/error messages with lossless JSON codecs and the stable error
  taxonomy, shared by the network service, the CLI and clients;
* :mod:`repro.server` -- the asyncio HTTP/WebSocket network front door
  (``AIQLSystem.serve()`` / ``python -m repro serve``).

The documented public surface is ``__all__`` below: the system facade
(:class:`AIQLSystem`, :class:`SystemConfig`, :class:`ResultSet`), the
language entry points (:func:`parse` and the ``AIQL*Error`` types), the
concurrent service (:class:`QueryService`, :class:`ScanCache`) and the
network layer (:class:`AIQLServer`, lazily imported).  Everything else
is implementation detail and may move between releases.
"""

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine.result import ResultSet
from repro.lang.errors import AIQLError, AIQLSemanticError, AIQLSyntaxError
from repro.lang.parser import parse
from repro.service import QueryService, ScanCache

__version__ = "1.2.0"

__all__ = [
    "AIQLError",
    "AIQLSemanticError",
    "AIQLSyntaxError",
    "AIQLServer",
    "AIQLSystem",
    "QueryService",
    "ResultSet",
    "ScanCache",
    "SystemConfig",
    "parse",
    "__version__",
]


def __getattr__(name: str):
    # AIQLServer is part of the public surface but imported lazily:
    # pulling the server stack (asyncio plumbing) on `import repro`
    # would tax every non-networked user.
    if name == "AIQLServer":
        from repro.server import AIQLServer

        return AIQLServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
