"""AIQL: Enabling Efficient Attack Investigation from System Monitoring Data.

Full Python reproduction of Gao et al., USENIX ATC 2018.  The package
provides:

* :class:`~repro.core.system.AIQLSystem` -- the end-to-end system: optimized
  storage, the AIQL language, and the relationship-based query engine;
* :mod:`repro.lang` -- lexer, parser, semantic compiler for the AIQL query
  language (multievent, dependency and anomaly syntax);
* :mod:`repro.storage` -- partitioned/flat/MPP event stores;
* :mod:`repro.engine` -- relationship-based and fetch-and-filter schedulers,
  anomaly sliding windows, dependency rewriting, parallel execution;
* :mod:`repro.baselines` -- the PostgreSQL-, Neo4j- and Greenplum-like
  comparison systems and the SQL/Cypher/SPL conciseness corpus;
* :mod:`repro.workload` -- the synthetic enterprise and the paper's attack
  scenarios (APT case study, dependency chains, malware, abnormal behavior);
* :mod:`repro.service` -- the concurrent query service: shared executor,
  partition-scan cache, batched/deduplicated query submission.
"""

from repro.core.config import SystemConfig
from repro.core.system import AIQLSystem
from repro.engine.result import ResultSet
from repro.lang.errors import AIQLError, AIQLSemanticError, AIQLSyntaxError
from repro.lang.parser import parse
from repro.service import QueryService, ScanCache

__version__ = "1.1.0"

__all__ = [
    "AIQLError",
    "AIQLSemanticError",
    "AIQLSyntaxError",
    "AIQLSystem",
    "QueryService",
    "ResultSet",
    "ScanCache",
    "SystemConfig",
    "parse",
    "__version__",
]
